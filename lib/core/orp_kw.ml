open Kwsc_geom

(* Cells and queries live in rank space: closed integer rectangles. *)
type irect = { ilo : int array; ihi : int array }

let irect_intersects a b =
  let ok = ref true in
  for i = 0 to Array.length a.ilo - 1 do
    if a.ihi.(i) < b.ilo.(i) || b.ihi.(i) < a.ilo.(i) then ok := false
  done;
  !ok

let irect_covers outer inner =
  let ok = ref true in
  for i = 0 to Array.length outer.ilo - 1 do
    if inner.ilo.(i) < outer.ilo.(i) || inner.ihi.(i) > outer.ihi.(i) then ok := false
  done;
  !ok

type t = {
  inner : (irect, irect) Transform.t;
  rs : Rank_space.t;
  ranks : int array array; (* object id -> rank vector *)
  d : int;
}

let build ?leaf_weight ?tau_exponent ?use_bits ?pool ~k objs =
  let m = Array.length objs in
  if m = 0 then invalid_arg "Orp_kw.build: empty input";
  let pts = Array.map fst objs in
  let docs = Array.map snd objs in
  let d = Array.length pts.(0) in
  let rs = Rank_space.create pts in
  let ranks = Array.init m (fun id -> Rank_space.ranks rs id) in
  let weights = Array.map Kwsc_invindex.Doc.size docs in
  let root_cell = { ilo = Array.make d 0; ihi = Array.make d (m - 1) } in
  let split ~depth cell ids =
    let axis = depth mod d in
    let sorted = Array.copy ids in
    Array.sort (fun a b -> Int.compare ranks.(a).(axis) ranks.(b).(axis)) sorted;
    let total = Array.fold_left (fun acc id -> acc + weights.(id)) 0 sorted in
    (* smallest prefix whose weight reaches half: that object is the pivot,
       guaranteeing both children carry at most half the weight *)
    let j = ref 0 and acc = ref 0 in
    (try
       Array.iteri
         (fun i id ->
           acc := !acc + weights.(id);
           if 2 * !acc >= total then begin
             j := i;
             raise Exit
           end)
         sorted
     with Exit -> ());
    let j = !j in
    let pivot_rank = ranks.(sorted.(j)).(axis) in
    let left = Array.sub sorted 0 j in
    let right = Array.sub sorted (j + 1) (Array.length sorted - j - 1) in
    let lcell = { ilo = Array.copy cell.ilo; ihi = Array.copy cell.ihi } in
    lcell.ihi.(axis) <- pivot_rank;
    let rcell = { ilo = Array.copy cell.ilo; ihi = Array.copy cell.ihi } in
    rcell.ilo.(axis) <- pivot_rank;
    ([| (lcell, left); (rcell, right) |], [| sorted.(j) |])
  in
  let classify q cell =
    if not (irect_intersects q cell) then Transform.Disjoint
    else if irect_covers q cell then Transform.Covered
    else Transform.Crossing
  in
  let contains q id =
    let r = ranks.(id) in
    let ok = ref true in
    for i = 0 to d - 1 do
      if r.(i) < q.ilo.(i) || r.(i) > q.ihi.(i) then ok := false
    done;
    !ok
  in
  let space = { Transform.root_cell; split; classify; contains } in
  { inner = Transform.build ?leaf_weight ?tau_exponent ?use_bits ?pool ~k ~space docs; rs; ranks; d }

let k t = Transform.k t.inner
let dim t = t.d
let input_size t = Transform.input_size t.inner

let query_stats ?limit t q ws =
  if Rect.dim q <> t.d then invalid_arg "Orp_kw.query: dimension mismatch";
  (* validate keywords even when the rank conversion short-circuits *)
  if Array.length (Kwsc_util.Sorted.sort_dedup (Array.to_list ws)) <> Transform.k t.inner then
    invalid_arg
      (Printf.sprintf "Transform.query: expected %d distinct keywords, got %d"
         (Transform.k t.inner)
         (Array.length (Kwsc_util.Sorted.sort_dedup (Array.to_list ws))));
  match Rank_space.rect_to_ranks t.rs q with
  | None -> ([||], Stats.fresh_query ())
  | Some (ilo, ihi) -> Transform.query_stats ?limit t.inner { ilo; ihi } ws

let query ?limit t q ws = fst (query_stats ?limit t q ws)
let query_batch ?pool ?limit t qs = Batch.run ?pool (fun (q, ws) -> query_stats ?limit t q ws) qs
let space_stats t = Transform.space_stats t.inner
let fold_nodes t ~init ~f = Transform.fold_nodes t.inner ~init ~f

let emptiness t q ws = Array.length (query ~limit:1 t q ws) = 0

let count_at_least t q ws ~threshold =
  if threshold < 1 then invalid_arg "Orp_kw.count_at_least: threshold must be >= 1";
  Array.length (query ~limit:threshold t q ws) >= threshold
