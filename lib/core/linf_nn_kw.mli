(** L∞ Nearest Neighbor with Keywords (Corollary 4): report the t objects
    containing all keywords that are closest to a query point under the
    Chebyshev metric.

    Reduction (Appendix F): the optimal radius is one of the d|D| candidate
    radii (per-dimension coordinate differences to the query point); binary
    search over the candidates' ranks, each probe asking the ORP-KW index
    whether the L∞ ball holds at least t matching objects. The paper's
    "manually terminate after O(N^(1-1/k) t^(1/k)) time" becomes an
    output-capped reporting query (DESIGN.md substitution 4). *)

open Kwsc_geom

type t

val build :
  ?leaf_weight:int ->
  ?engine:[ `Auto | `Kd | `Dimred ] ->
  k:int ->
  (Point.t * Kwsc_invindex.Doc.t) array ->
  t
(** [engine] selects the ORP-KW index answering the ball probes: [`Kd]
    (Theorem 1) or [`Dimred] (Theorem 2, what the corollary uses for
    d >= 3); [`Auto] picks by dimension. *)

val k : t -> int
val dim : t -> int
val input_size : t -> int

val query : t -> Point.t -> t':int -> int array -> (int * float) array
(** [query t q ~t' ws] is the [t'] nearest matching objects as
    (id, L∞ distance), ordered by increasing distance (ties broken by id).
    Returns fewer than [t'] entries iff fewer objects match the keywords.
    [ws] must hold exactly [k t] distinct keywords (the canonical
    {!Transform.validate_keyword_arity} contract); keywords absent from
    every document are legal and yield an empty answer. *)

val query_count : t -> Point.t -> t':int -> int array -> (int * float) array * int
(** As [query], also returning the number of ORP-KW probes issued — the
    O(log N) binary-search factor of Corollary 4, measurable. *)

val kind : string
(** Snapshot kind tag, ["kwsc.linf-nn-kw"]. *)

val save : string -> t -> unit
val load : string -> (t, Kwsc_snapshot.Codec.error) result
(** Durable snapshot round trip (the active engine — kd or dimred — is
    tagged in the file); see {!Orp_kw.save} / {!Orp_kw.load} for the
    shared contract. *)
