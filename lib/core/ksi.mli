(** k-Set Intersection reporting (Section 1.2) through the transformation
    framework: pure keyword search is k-SI in disguise, so instantiating the
    framework with a trivial 1-D "geometry" (balanced weighted splits over
    object ids, every cell covered by every query) yields an index with
    O(N) space and O(N^(1-1/k) (1 + OUT^(1/k))) query time — the
    generalization of Cohen–Porat [23] that Section 3.5 credits as the
    inspiration. *)

type t

val of_docs :
  ?leaf_weight:int ->
  ?tau_exponent:float ->
  ?use_bits:bool ->
  ?pool:Kwsc_util.Pool.t ->
  k:int ->
  Kwsc_invindex.Doc.t array ->
  t
(** Pure keyword search over objects [0..n-1] with the given documents. *)

val of_instance : ?leaf_weight:int -> k:int -> Kwsc_invindex.Ksi_instance.t -> t * int array
(** The Section-1.2 encoding of a k-SI instance: returns the index plus the
    element labels; [query] then takes set ids as keywords, and the caller
    maps returned object ids through the label array. *)

val k : t -> int
val input_size : t -> int

val query : ?limit:int -> t -> int array -> int array
(** [query t ws] — the ids of objects whose documents contain all of [ws];
    for an instance-built index this is the intersection of the named sets
    (as label-array indexes). *)

val query_stats : ?limit:int -> t -> int array -> int array * Stats.query

val query_batch :
  ?pool:Kwsc_util.Pool.t ->
  ?limit:int ->
  t ->
  int array array ->
  int array array * Stats.query
(** Evaluate a stream of keyword sets, sharded across the [pool] with
    per-shard counters merged at the end — the {!Batch.run} equivalence
    contract. *)

val emptiness : t -> int array -> bool
(** k-SI emptiness via an output-capped reporting query ([limit:1]) — the
    footnote-4 argument made concrete. *)

val space_stats : t -> Stats.space
val fold_nodes : t -> init:'a -> f:('a -> Transform.node_view -> 'a) -> 'a
