(** Orthogonal Range Reporting with Keywords (Theorem 1): the
    transformation framework instantiated with the kd-tree of Section 3.

    The index stores objects (point, document) and answers: given a
    d-rectangle [q] and [k] distinct keywords, report every object inside
    [q] whose document contains all the keywords. Space is O(N) words;
    query time O(N^(1-1/k) (1 + OUT^(1/k))) for d <= 2 (for d >= 3 the
    kd-tree's geometric term degrades as noted in Section 3.5 — use
    {!Dimred} there).

    General position is removed exactly as in Step 4: coordinates are
    converted to rank space with object-id tie-breaking, so duplicate
    coordinates are handled. *)

open Kwsc_geom

type t

val build :
  ?leaf_weight:int ->
  ?tau_exponent:float ->
  ?use_bits:bool ->
  ?pool:Kwsc_util.Pool.t ->
  k:int ->
  (Point.t * Kwsc_invindex.Doc.t) array ->
  t
(** @raise Invalid_argument if [k < 2], the input is empty, or dimensions
    are mixed. [tau_exponent] and [use_bits] are the ablation knobs of
    {!Transform.build}; [pool] parallelizes heavy subtree builds exactly as
    in {!Transform.build} (identical structure at every pool size). *)

val k : t -> int
val dim : t -> int

val input_size : t -> int
(** N = total document size (equation (2)). *)

val size : t -> int
(** Number of indexed objects. *)

val objects : t -> (Point.t * Kwsc_invindex.Doc.t) array
(** Reconstruct the exact (point, document) input array in object-id
    order: coordinates round-trip through the rank tables bit for bit,
    so [build ~k:(k t) (objects t)] rebuilds this index byte-identically.
    Used by the shard layer to repartition an index under a new plan. *)

val query : ?limit:int -> t -> Rect.t -> int array -> int array
(** Sorted ids of the objects in [q] containing all keywords. [ws] must
    hold exactly [k t] distinct keywords (the canonical
    {!Transform.validate_keyword_arity} contract: anything else raises
    [Invalid_argument]); keywords absent from every document are legal
    and yield an empty answer without scanning. Degenerate rectangles
    (NaN or inverted bounds) also yield an empty answer. [limit] caps the
    number of reported objects (the probe mode of Corollary 4). *)

val query_stats : ?limit:int -> t -> Rect.t -> int array -> int array * Stats.query

val query_batch :
  ?pool:Kwsc_util.Pool.t ->
  ?limit:int ->
  t ->
  (Rect.t * int array) array ->
  int array array * Stats.query
(** Evaluate a query stream, sharded across the [pool] with per-shard
    counters merged at the end — the {!Batch.run} equivalence contract. *)

val space_stats : t -> Stats.space

val fold_nodes : t -> init:'a -> f:('a -> Transform.node_view -> 'a) -> 'a
(** Expose the underlying transformed tree for invariant tests. *)

val emptiness : t -> Rect.t -> int array -> bool
(** Does the query have an empty answer? Output-capped reporting probe
    (footnote 4 of the paper made concrete): O(N^(1-1/k)) when empty. *)

val count_at_least : t -> Rect.t -> int array -> threshold:int -> bool
(** [count_at_least t q ws ~threshold]: does the query return at least
    [threshold] objects? The detection probe in the proof of Corollary 4,
    costing O(N^(1-1/k) threshold^(1/k)). *)

val kind : string
(** Snapshot kind tag, ["kwsc.orp-kw"]. *)

val encode : Kwsc_snapshot.Codec.W.t -> t -> unit
val decode : Kwsc_snapshot.Codec.R.t -> t
(** Raw codec, for embedding inside other snapshots ({!Linf_nn_kw},
    {!Rr_kw}, {!Dimred}). [decode] raises [Kwsc_snapshot.Codec.Corrupt]. *)

val save : string -> t -> unit
(** [save path t] writes a durable snapshot (see {!Kwsc_snapshot.Codec}
    for the format). Raises [Sys_error] on IO failure. *)

val load : string -> (t, Kwsc_snapshot.Codec.error) result
(** Rebuild an index from a snapshot in O(file size). Queries on the
    result are answer- and work-counter-identical to the freshly built
    index. Corrupt input — truncation, flipped bytes, bad magic or
    version, another module's snapshot — returns [Error], never raises. *)
