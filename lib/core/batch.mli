(** Shared implementation of the [query_batch] APIs: shard a query
    stream across the domain pool with domain-local statistics.

    Every Table-1 index exposes [query_batch] as a thin wrapper around
    {!run}, because the indexes are immutable after construction and
    their query paths allocate a fresh {!Stats.query} per call — the
    only cross-query mutable state a naive batch loop would share is the
    accumulated counters, which [run] keeps strictly per-shard (one
    shard per pool worker) and combines with {!Stats.merge} at the end.

    Equivalence contract (checked by [test_parallel_diff]): for any pool
    size, [run] returns exactly the per-query answers of a sequential
    loop, and the merged counters equal the sequential field-wise sum —
    integer addition is associative, so even the totals are identical,
    not merely statistically close. *)

val run :
  ?pool:Kwsc_util.Pool.t ->
  ('q -> int array * Stats.query) ->
  'q array ->
  int array array * Stats.query
(** [run answer qs]: evaluate [answer] on every element of [qs] (in
    parallel shards on [pool], default {!Kwsc_util.Pool.default}),
    returning per-query id arrays in input order plus merged counters. *)
