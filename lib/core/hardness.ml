open Kwsc_geom

let ksi_as_orp ~k inst =
  let docs, elements = Kwsc_invindex.Ksi_instance.to_keyword_dataset inst in
  (* "map each object to an arbitrary point in R^d": spread them on a line
     so rank-space construction stays trivial *)
  let objs = Array.mapi (fun i doc -> ([| float_of_int i; 0.0 |], doc)) docs in
  (Orp_kw.build ~k objs, elements)

let ksi_query_via_orp (orp, elements) ws =
  let full = Rect.full (Orp_kw.dim orp) in
  Array.map (fun id -> elements.(id)) (Orp_kw.query orp full ws)

let ksi_via_linf_nn ~k inst ws =
  let docs, elements = Kwsc_invindex.Ksi_instance.to_keyword_dataset inst in
  let objs = Array.mapi (fun i doc -> ([| float_of_int i; 0.0 |], doc)) docs in
  let nn = Linf_nn_kw.build ~k objs in
  let q = [| 0.0; 0.0 |] in
  (* doubling-t loop of Appendix G *)
  let rec grow t' =
    let hits = Linf_nn_kw.query nn q ~t' ws in
    if Array.length hits < t' then hits else grow (2 * t')
  in
  let hits = grow 1 in
  let out = Array.map (fun (id, _) -> elements.(id)) hits in
  Array.sort Int.compare out;
  out

let lemma8_delta ~k ~eps =
  if k < 2 || eps <= 0.0 then invalid_arg "Hardness.lemma8_delta";
  let invk = 1.0 /. float_of_int k in
  Float.min invk (eps /. (1.0 -. invk +. eps))
