(** Instrumentation shared by all transformed indexes. The paper's analysis
    (Lemma 9, Lemma 10, Propositions 1–3) bounds *counts* — covered nodes,
    crossing nodes, objects scanned — so the bench harness validates those
    counts directly rather than only wall-clock time. *)

type query = {
  mutable nodes_visited : int;  (** size of T_qry *)
  mutable covered_nodes : int;  (** covered nodes of Section 3.3 *)
  mutable crossing_nodes : int;  (** crossing nodes of Section 3.3 *)
  mutable pivot_checked : int;  (** objects examined from pivot sets *)
  mutable small_scanned : int;  (** objects examined from materialized sets *)
  mutable pruned_empty : int;  (** children skipped by the emptiness bits *)
  mutable pruned_geom : int;  (** children skipped by cell-vs-query tests *)
  mutable reported : int;  (** OUT *)
  mutable alloc_words : int;
      (** minor-heap words allocated while answering, measured by
          {!count_alloc} — the observable the flat kernels drive toward
          zero *)
  mutable cache_hits : int;
      (** queries served from the materialized-intersection cache *)
  mutable cache_misses : int;
      (** cache-eligible queries that had to run the kernels *)
}

val fresh_query : unit -> query

val work : query -> int
(** Total objects examined — the machine-independent cost measure used for
    exponent fits. *)

val add_into : into:query -> query -> unit
(** Accumulate [q]'s counters into [into], field by field. The batched
    query paths keep one accumulator per domain (no counter is ever
    shared across domains) and combine them with {!merge} at the end. *)

val count_alloc : query -> (unit -> 'a) -> 'a
(** [count_alloc q f] runs [f ()], charging the minor-heap words it
    allocates (the calling domain's [Gc.minor_words] delta) to
    [q.alloc_words]. Deterministic for a deterministic [f], so parallel
    and sequential runs of the same query batch agree. *)

val merge : query -> query -> query
(** Fresh counter record holding the field-wise sum. Associative and
    commutative with {!fresh_query} as identity, so per-domain partial
    sums fold to the same totals as a sequential accumulation — the
    property [test_parallel_diff] checks. *)

type space = {
  nodes : int;
  max_depth : int;
  max_pivot : int;
  pivot_words : int;
  materialized_words : int;
  bitset_words : int;
  table_words : int;
  total_words : int;  (** overall index footprint in 64-bit words *)
}

val pp_space : Format.formatter -> space -> unit
