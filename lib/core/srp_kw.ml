[@@@kwsc.domain_safe]

open Kwsc_geom

type t = { sp : Sp_kw.t; d : int }

let build ?leaf_weight ?seed ?pool ~k objs =
  if Array.length objs = 0 then invalid_arg "Srp_kw.build: empty input";
  let d = Array.length (fst objs.(0)) in
  let lifted = Array.map (fun (p, doc) -> (Lift.point p, doc)) objs in
  { sp = Sp_kw.build ?leaf_weight ?seed ?pool ~k lifted; d }

let k t = Sp_kw.k t.sp
let dim t = t.d
let input_size t = Sp_kw.input_size t.sp

let halfspace_of_ball_sq t center r2 =
  if Array.length center <> t.d then invalid_arg "Srp_kw.query: dimension mismatch";
  if r2 < 0.0 then invalid_arg "Srp_kw.query: negative squared radius";
  let coeffs = Array.make (t.d + 1) 0.0 in
  for i = 0 to t.d - 1 do
    coeffs.(i) <- -2.0 *. center.(i)
  done;
  coeffs.(t.d) <- 1.0;
  Halfspace.make coeffs (r2 -. Linalg.dot center center)

let query_ball_sq ?limit t center r2 ws =
  Sp_kw.query_halfspaces ?limit t.sp [ halfspace_of_ball_sq t center r2 ] ws

let query ?limit t (s : Sphere.t) ws =
  query_ball_sq ?limit t s.Sphere.center (s.Sphere.radius *. s.Sphere.radius) ws

let query_stats ?limit t (s : Sphere.t) ws =
  let h = halfspace_of_ball_sq t s.Sphere.center (s.Sphere.radius *. s.Sphere.radius) in
  Sp_kw.query_stats ?limit t.sp (Polytope.make ~dim:(t.d + 1) [ h ]) ws

let query_batch ?pool ?limit t qs =
  Batch.run ?pool (fun (s, ws) -> query_stats ?limit t s ws) qs

let space_stats t = Sp_kw.space_stats t.sp

let emptiness t s ws = Array.length (query ~limit:1 t s ws) = 0

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

module C = Kwsc_snapshot.Codec

let kind = "kwsc.srp-kw"

let encode w t =
  C.W.i64 w t.d;
  Sp_kw.encode w t.sp

let decode r =
  let d = C.R.i64 r in
  let sp = Sp_kw.decode r in
  if Sp_kw.dim sp <> d + 1 then
    C.corrupt "Srp_kw: the lifted index does not live in dimension d + 1";
  { sp; d }

let save path t =
  C.save_file ~path ~kind
    [
      ("meta", C.to_string (fun w ->
           C.W.i64 w (k t);
           C.W.i64 w t.d;
           C.W.i64 w (input_size t)));
      ("index", C.to_string (fun w -> encode w t));
    ]

let load path =
  C.run (fun () ->
      let sections = C.load_kind_exn ~path ~kind in
      let mk, md, mn =
        C.decode_section sections "meta" (fun r ->
            let mk = C.R.i64 r in
            let md = C.R.i64 r in
            let mn = C.R.i64 r in
            (mk, md, mn))
      in
      let t = C.decode_section sections "index" decode in
      if k t <> mk || t.d <> md || input_size t <> mn then
        C.corrupt "Srp_kw: meta section disagrees with the decoded index";
      t)
