[@@@kwsc.domain_safe]

open Kwsc_geom

(* Cells for classification are the bounding boxes of each node's active
   points. The BSP halfspace splits (rotating generic directions) define the
   partition — who goes left, who goes right, who pivots — while the
   box-vs-halfspace tests below give exact O(d) Disjoint/Covered/Crossing
   answers with no LP in the query hot path:
   - a box is outside the query region if it misses any single constraint
     entirely (sufficient, hence the pruning is conservative-safe);
   - a box is covered if it satisfies every constraint entirely. *)
type t = {
  inner : (Rect.t, Polytope.t) Transform.t;
  pts : Point.t array; (* the [contains] test needs them; snapshots carry them *)
  d : int;
}

let contains_of pts q id = Polytope.mem q (pts : Point.t array).(id)

let make_dirs rng d =
  let num = (2 * d) + 3 in
  Array.init num (fun i ->
      if i < d then Array.init d (fun j -> if i = j then 1.0 else 0.0)
      else begin
        let v = Array.init d (fun _ -> Kwsc_util.Prng.float rng 2.0 -. 1.0) in
        let norm = sqrt (Array.fold_left (fun a x -> a +. (x *. x)) 0.0 v) in
        if norm < 1e-9 then Array.init d (fun j -> if j = 0 then 1.0 else 0.0)
        else Array.map (fun x -> x /. norm) v
      end)

(* min and max of [coeffs . x] over a box. *)
let linear_range (cell : Rect.t) coeffs =
  let lo = ref 0.0 and hi = ref 0.0 in
  Array.iteri
    (fun i c ->
      if c >= 0.0 then begin
        lo := !lo +. (c *. cell.Rect.lo.(i));
        hi := !hi +. (c *. cell.Rect.hi.(i))
      end
      else begin
        lo := !lo +. (c *. cell.Rect.hi.(i));
        hi := !hi +. (c *. cell.Rect.lo.(i))
      end)
    coeffs;
  (!lo, !hi)

let classify_box q cell =
  let disjoint = ref false and covered = ref true in
  List.iter
    (fun (h : Halfspace.t) ->
      let lo, hi = linear_range cell h.Halfspace.coeffs in
      if lo > h.Halfspace.bound then disjoint := true;
      if hi > h.Halfspace.bound then covered := false)
    (Polytope.halfspaces q);
  if !disjoint then Transform.Disjoint
  else if !covered then Transform.Covered
  else Transform.Crossing

let bbox_of d pts ids =
  let lo = Array.make d infinity and hi = Array.make d neg_infinity in
  Array.iter
    (fun id ->
      let p = pts.(id) in
      for i = 0 to d - 1 do
        lo.(i) <- Float.min lo.(i) p.(i);
        hi.(i) <- Float.max hi.(i) p.(i)
      done)
    ids;
  Rect.make lo hi

let build ?leaf_weight ?(seed = 0x51ac3d) ?pool ~k objs =
  let m = Array.length objs in
  if m = 0 then invalid_arg "Sp_kw.build: empty input";
  let pts = Array.map fst objs in
  let docs = Array.map snd objs in
  let d = Array.length pts.(0) in
  Array.iter (fun p -> if Array.length p <> d then invalid_arg "Sp_kw.build: mixed dimensions") pts;
  let rng = Kwsc_util.Prng.create seed in
  let dirs = make_dirs rng d in
  let weights = Array.map Kwsc_invindex.Doc.size docs in
  let split ~depth _cell ids =
    let dir = dirs.(depth mod Array.length dirs) in
    let keyed = Array.map (fun id -> (Linalg.dot dir pts.(id), id)) ids in
    Array.sort
      (fun (ka, ia) (kb, ib) ->
        let c = Float.compare ka kb in
        if c <> 0 then c
        else
          let c = Point.compare_lex pts.(ia) pts.(ib) in
          if c <> 0 then c else Int.compare ia ib)
      keyed;
    let total = Array.fold_left (fun acc (_, id) -> acc + weights.(id)) 0 keyed in
    let j = ref 0 and acc = ref 0 in
    (try
       Array.iteri
         (fun i (_, id) ->
           acc := !acc + weights.(id);
           if 2 * !acc >= total then begin
             j := i;
             raise Exit
           end)
         keyed
     with Exit -> ());
    let m_val = fst keyed.(!j) in
    (* every object on the splitting hyperplane becomes a pivot (Step 2:
       objects on child-cell boundaries) *)
    let lo = ref !j and hi = ref !j in
    while !lo > 0 && Float.equal (fst keyed.(!lo - 1)) m_val do
      decr lo
    done;
    while !hi < Array.length keyed - 1 && Float.equal (fst keyed.(!hi + 1)) m_val do
      incr hi
    done;
    let left = Array.map snd (Array.sub keyed 0 !lo) in
    let right = Array.map snd (Array.sub keyed (!hi + 1) (Array.length keyed - !hi - 1)) in
    let pivots = Array.map snd (Array.sub keyed !lo (!hi - !lo + 1)) in
    let children = ref [] in
    if Array.length right > 0 then children := (bbox_of d pts right, right) :: !children;
    if Array.length left > 0 then children := (bbox_of d pts left, left) :: !children;
    (Array.of_list !children, pivots)
  in
  let all_ids = Array.init m (fun i -> i) in
  let space =
    {
      Transform.root_cell = bbox_of d pts all_ids;
      split;
      classify = classify_box;
      contains = contains_of pts;
    }
  in
  { inner = Transform.build ?leaf_weight ?pool ~k ~space docs; pts; d }

let k t = Transform.k t.inner
let dim t = t.d
let input_size t = Transform.input_size t.inner

let query_stats ?limit t q ws =
  if Polytope.dim q <> t.d then invalid_arg "Sp_kw.query: dimension mismatch";
  Transform.query_stats ?limit t.inner q ws

let query_polytope ?limit t q ws = fst (query_stats ?limit t q ws)
let query_simplex ?limit t s ws = query_polytope ?limit t (Polytope.of_simplex s) ws
let query_halfspaces ?limit t hs ws = query_polytope ?limit t (Polytope.make ~dim:t.d hs) ws
let query_batch ?pool ?limit t qs = Batch.run ?pool (fun (q, ws) -> query_stats ?limit t q ws) qs
let space_stats t = Transform.space_stats t.inner
let fold_nodes t ~init ~f = Transform.fold_nodes t.inner ~init ~f

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

module C = Kwsc_snapshot.Codec

let kind = "kwsc.sp-kw"

let write_cell w (cell : Rect.t) =
  C.W.float_array w cell.Rect.lo;
  C.W.float_array w cell.Rect.hi

let read_cell r =
  let lo = C.R.float_array r in
  let hi = C.R.float_array r in
  (* Rect.make validates lo <= hi; under Codec.run a violation surfaces
     as a Malformed error *)
  Rect.make lo hi

let encode w t =
  C.W.i64 w t.d;
  C.W.float_array2 w t.pts;
  Transform.encode write_cell w t.inner

let decode r =
  let d = C.R.i64 r in
  let pts = C.R.float_array2 r in
  if d < 1 then C.corrupt "Sp_kw: dimension must be >= 1";
  Array.iter
    (fun p -> if Array.length p <> d then C.corrupt "Sp_kw: point with the wrong dimension")
    pts;
  let inner =
    Transform.decode ~classify:classify_box ~contains:(contains_of pts) read_cell r
  in
  { inner; pts; d }

let save path t =
  C.save_file ~path ~kind
    [
      ("meta", C.to_string (fun w ->
           C.W.i64 w (k t);
           C.W.i64 w t.d;
           C.W.i64 w (input_size t)));
      ("index", C.to_string (fun w -> encode w t));
    ]

let load path =
  C.run (fun () ->
      let sections = C.load_kind_exn ~path ~kind in
      let mk, md, mn =
        C.decode_section sections "meta" (fun r ->
            let mk = C.R.i64 r in
            let md = C.R.i64 r in
            let mn = C.R.i64 r in
            (mk, md, mn))
      in
      let t = C.decode_section sections "index" decode in
      if k t <> mk || t.d <> md || input_size t <> mn then
        C.corrupt "Sp_kw: meta section disagrees with the decoded index";
      t)
