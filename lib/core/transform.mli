(** The index-transformation framework of Section 3 — the paper's primary
    contribution. Given any space-partitioning index (Step 1, described by a
    {!space} value), the framework produces a keyword-aware index
    (Steps 2–3): it maintains active and pivot sets per node, classifies
    keywords as large/small against the threshold [N_u^(1-1/k)], stores the
    k-dimensional child-emptiness bit arrays over large keywords, and
    materializes an active set [D_u^act(w)] exactly when [w] is small at [u]
    but large at all proper ancestors.

    The framework is generic over the geometry: instantiating it with the
    kd-tree gives Theorem 1 (see {!Orp_kw}); with the partition tree,
    Theorem 12 / Theorem 5 (see {!Sp_kw}); with a trivial 1-D structure, the
    k-SI index of Section 1.2 (see {!Ksi}). *)

type relation = Disjoint | Covered | Crossing
(** Cell-versus-query trichotomy of Section 3.3. *)

type ('cell, 'query) space = {
  root_cell : 'cell;  (** cell of the root: covers all objects *)
  split : depth:int -> 'cell -> int array -> ('cell * int array) array * int array;
      (** [split ~depth cell ids] partitions the active objects [ids]:
          returns the children (cell and the ids pushed into each child's
          interior) and the pivot ids (objects on child boundaries, Step 2).
          Every id must appear in exactly one child or in the pivots. *)
  classify : 'query -> 'cell -> relation;
      (** conservative is allowed (Covered may be reported as Crossing);
          [Disjoint] must be exact in the sense that a [Disjoint] cell
          contains no result object. *)
  contains : 'query -> int -> bool;  (** is object [id]'s point inside the query region? *)
}
(** Step-1 interface: what the framework needs from the geometry index.
    Implementations close over the dataset's points. *)

type ('cell, 'query) t

val build :
  ?leaf_weight:int ->
  ?tau_exponent:float ->
  ?use_bits:bool ->
  ?pool:Kwsc_util.Pool.t ->
  k:int ->
  space:('cell, 'query) space ->
  Kwsc_invindex.Doc.t array ->
  ('cell, 'query) t
(** [build ~k ~space docs] indexes objects [0 .. Array.length docs - 1].
    [k >= 2] is the number of keywords every query must supply (the paper
    fixes k per index). [leaf_weight] (default 4) stops the recursion once
    [N_u] drops to that many words.

    Two ablation knobs expose the design choices of Section 3.2 (used by the
    bench harness; leave them at their defaults otherwise):
    - [tau_exponent] overrides the large/small threshold exponent: a keyword
      is large at [u] iff its active count is at least [N_u^tau_exponent].
      The paper's choice — and the default — is [1 - 1/k]; 0 makes every
      keyword large (pure tree descent), 1 makes every keyword small (pure
      materialized-list scans).
    - [use_bits:false] drops the k-dimensional child-emptiness bit arrays:
      the query then always descends into geometrically feasible children.
      Correct, but emptiness queries lose their O(1)-per-node pruning.

    Heavy nodes near the root build their children as parallel [pool]
    tasks (default {!Kwsc_util.Pool.default}); the structure produced is
    identical at every pool size.

    @raise Invalid_argument if [k < 2], [docs] is empty, or [tau_exponent]
    is outside [\[0, 1\]]. *)

val k : ('cell, 'query) t -> int

val input_size : ('cell, 'query) t -> int
(** N of equation (2). *)

val documents : ('cell, 'query) t -> Kwsc_invindex.Doc.t array
(** The indexed documents in object-id order — a fresh array of the
    immutable build input, so wrappers (and the shard layer's
    reshard-on-load) can reconstruct their original object arrays. *)

type params = { leaf_weight : int; tau_exponent : float; use_bits : bool }
(** The build-time knobs, as resolved (defaults applied). Recorded in the
    index so snapshots can restate exactly how it was built. *)

val params : ('cell, 'query) t -> params

val validate_keyword_arity : k:int -> int array -> int array
(** [validate_keyword_arity ~k ws] sorts and dedups [ws] and returns the
    result, enforcing the uniform Table-1 keyword contract: exactly [k]
    distinct keywords. Keywords need not occur in any document — an
    absent keyword is legal and simply produces an empty answer.
    @raise Invalid_argument with the canonical message
    ["Transform.query: expected %d distinct keywords, got %d"] otherwise.
    Every wrapper module funnels its keyword validation through this
    function so the contract cannot drift. *)

val query : ?limit:int -> ('cell, 'query) t -> 'query -> int array -> int array
(** [query t q ws] returns the sorted ids of objects inside [q] whose
    documents contain all of [ws] — the Section 3.3 algorithm. [ws] must
    hold exactly [k t] distinct keywords. [limit] stops reporting early
    (used by the nearest-neighbor probes of Corollaries 4 and 7, replacing
    the paper's manual time cut-off).
    @raise Invalid_argument on a malformed keyword set. *)

val query_stats : ?limit:int -> ('cell, 'query) t -> 'query -> int array -> int array * Stats.query
(** As [query], also returning per-query instrumentation. *)

val query_batch :
  ?pool:Kwsc_util.Pool.t ->
  ?limit:int ->
  ('cell, 'query) t ->
  ('query * int array) array ->
  int array array * Stats.query
(** Evaluate a query stream, sharded across the [pool] with domain-local
    counters merged at the end — see {!Batch.run} for the exact
    equivalence contract with a sequential loop. *)

val space_stats : ('cell, 'query) t -> Stats.space
(** Space accounting in words (Appendix B's budget). *)

type node_view = {
  depth : int;
  n_u : int;  (** the node's weight N_u, equation (6) *)
  pivot : int array;
  num_children : int;
  num_large : int;
  materialized : (int * int array) list;  (** (keyword, materialized id list) *)
}

val fold_nodes : ('cell, 'query) t -> init:'a -> f:('a -> node_view -> 'a) -> 'a
(** Structural traversal for invariant tests (pivot sizes, weight decay,
    materialize-once, large-keyword budget). *)

val encode :
  (Kwsc_snapshot.Codec.W.t -> 'cell -> unit) ->
  Kwsc_snapshot.Codec.W.t ->
  ('cell, 'query) t ->
  unit
(** Serialize the transform — parameters, documents and the whole node
    tree (pivots, large-keyword tables, materialized sets, child
    emptiness bitsets) — using [write_cell] for the geometry cells. *)

val decode :
  classify:('query -> 'cell -> relation) ->
  contains:('query -> int -> bool) ->
  (Kwsc_snapshot.Codec.R.t -> 'cell) ->
  Kwsc_snapshot.Codec.R.t ->
  ('cell, 'query) t
(** Rebuild a transform from {!encode}d bytes. The caller re-supplies the
    pure geometry predicates ([classify] / [contains]); the splitter is
    only ever used at build time, so a loaded index installs one that
    raises. Queries on the result are bit-for-bit identical — answers and
    work counters — to the original.
    @raise Kwsc_snapshot.Codec.Corrupt on malformed bytes. *)
