(** Dynamic ORP-KW via the logarithmic method (Bentley–Saxe).

    The paper's indexes are static. ORP-KW is a decomposable search problem
    (the answer over a disjoint union of objects is the union of answers),
    so the classical static-to-dynamic transformation applies: maintain
    O(log n) buckets of exponentially growing size, each a static Theorem-1
    index. An insertion rebuilds the carry chain of the binary counter —
    O(log n) amortized rebuilt words per inserted word; a deletion is a
    tombstone, with a global rebuild once half the stored objects are dead.
    A query unions the per-bucket answers, multiplying the static query
    bound by O(log n).

    This goes beyond the paper (its natural "dynamization" follow-up) and is
    exercised by experiment DYN in the bench harness. *)

open Kwsc_geom

type t

val create : ?leaf_weight:int -> k:int -> d:int -> unit -> t
(** An empty dynamic index over R^d for k-keyword queries. *)

val insert : t -> Point.t * Kwsc_invindex.Doc.t -> int
(** Add one object; returns its permanent id (dense, starting at 0).
    Amortized O(polylog) index rebuild work per input word.
    @raise Invalid_argument on a dimension mismatch. *)

val delete : t -> int -> unit
(** Tombstone an object by id. Idempotent.
    @raise Invalid_argument if the id was never assigned. *)

val query : t -> Rect.t -> int array -> int array
(** Sorted ids of live objects inside the rectangle containing all [k]
    keywords. *)

val live : t -> int -> (Point.t * Kwsc_invindex.Doc.t) option
(** The object stored under an id, or [None] if it was deleted — or never
    assigned at all. Total on every [int]: negative ids and ids at or
    beyond the next unassigned one return [None] rather than raising. *)

val size : t -> int
(** Live objects. *)

val input_size : t -> int
(** N over live objects. *)

val buckets : t -> int list
(** Sizes (in objects) of the current static buckets, largest first —
    exposed for tests and the DYN bench. *)

val check_invariants : t -> Kwsc_util.Invariant.violation list
(** Deep structural audit of the logarithmic method: buckets partition the
    stored ids with geometrically decaying capacities, every live object is
    indexed exactly once, and the live/tombstone bookkeeping is exact.
    Empty when well-formed. [insert] and [delete] run this automatically
    when [KWSC_AUDIT=1]. *)
