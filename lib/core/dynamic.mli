(** Dynamic ORP-KW via the logarithmic method (Bentley–Saxe).

    The paper's indexes are static. ORP-KW is a decomposable search problem
    (the answer over a disjoint union of objects is the union of answers),
    so the classical static-to-dynamic transformation applies: maintain
    O(log n) buckets of exponentially growing size, each a static Theorem-1
    index. An insertion rebuilds the carry chain of the binary counter —
    O(log n) amortized rebuilt words per inserted word; a deletion is a
    tombstone, with a global rebuild once half the stored objects are dead.
    A query unions the per-bucket answers, multiplying the static query
    bound by O(log n).

    This goes beyond the paper (its natural "dynamization" follow-up) and is
    exercised by experiment DYN in the bench harness. The serve layer
    ({!Kwsc_serve}) publishes immutable epochs of the bucket chain under the
    {!version} watermark; {!save}/{!load} make those states durable. *)

open Kwsc_geom

type t

val create : ?leaf_weight:int -> k:int -> d:int -> unit -> t
(** An empty dynamic index over R^d for k-keyword queries. *)

val insert : t -> Point.t * Kwsc_invindex.Doc.t -> int
(** Add one object; returns its permanent id (dense, starting at 0).
    Amortized O(polylog) index rebuild work per input word.
    @raise Invalid_argument on a dimension mismatch. *)

val delete : t -> int -> unit
(** Tombstone an object by id. Idempotent. Deleting the last live object
    clears the bucket chain outright (queries never walk all-dead buckets);
    otherwise a global rebuild compacts the chain once at least half of the
    bucket-referenced ids are tombstones (and more than 8 are, so tiny
    indexes don't thrash).
    @raise Invalid_argument if the id was never assigned. *)

val version : t -> int
(** Monotonic logical watermark: the number of inserts plus effective
    deletes applied so far. Structural maintenance ({!merge_smallest})
    never ticks it — two states with equal watermarks are query-equivalent.
    Restored exactly by {!load}. *)

val dim : t -> int
val arity : t -> int
(** Dimension [d] and keyword arity [k] fixed at {!create}. *)

val query : t -> Rect.t -> int array -> int array
(** Sorted ids of live objects inside the rectangle containing all [k]
    keywords. *)

val live : t -> int -> (Point.t * Kwsc_invindex.Doc.t) option
(** The object stored under an id, or [None] if it was deleted — or never
    assigned at all. Total on every [int]: negative ids and ids at or
    beyond the next unassigned one return [None] rather than raising. *)

val size : t -> int
(** Live objects. *)

val input_size : t -> int
(** N over live objects. *)

val buckets : t -> int list
(** Sizes (in objects) of the current static buckets, largest first —
    exposed for tests and the DYN bench. Sizes count stored ids, live or
    tombstoned. *)

val view : t -> (Orp_kw.t * int array) Kwsc_util.Pool.Once.t array
(** The current bucket chain, largest first, each bucket a once-cell
    holding its (static index, local→global id table) pair. Buckets built
    in memory are ready cells; a paged restore ([load ~ooc:true]) leaves
    each bucket deferred until the first query that walks it, and forcing
    such a cell may raise [Codec.Corrupt] (lazy CRC). Both components are
    immutable once materialized — updates replace buckets, never mutate
    them — so a view taken by the writer can be shared with reader
    domains. Liveness is NOT part of the view: pair it with
    {!tombstone_words} taken at the same instant (the serve layer's epoch
    does exactly this). *)

val tombstone_words : t -> int array
(** A fresh copy of the packed 63-bit tombstone bitmap over the assigned
    ids ([Kwsc_util.Wordops] word math): bit [id] is set exactly when [id]
    was deleted. Length [Wordops.nwords (next assigned id)]. *)

val merge_smallest : t -> bool
(** One step of background maintenance: fold the two smallest carry-chain
    levels into one frozen layout, dropping their tombstones, and carry the
    merged group up the chain exactly as an insert would (the geometric
    decay holds by construction). With a single level left, compact it iff
    it still references tombstones. Returns [false] without rebuilding
    anything when there is no productive work. Answers and {!version} are
    unchanged either way; each productive step strictly shrinks the chain
    or its tombstone count, so driving this to a fixpoint terminates. Runs
    the {!check_invariants} audit under [KWSC_AUDIT=1] like the update
    operations. *)

val check_invariants : t -> Kwsc_util.Invariant.violation list
(** Deep structural audit of the logarithmic method: buckets partition the
    stored ids with geometrically decaying capacities, every live object is
    indexed exactly once, the tombstone bitmap mirrors the object slots,
    and the live/tombstone bookkeeping is exact ([dead_pending] equals the
    tombstones the buckets still reference). Empty when well-formed.
    [insert] and [delete] run this automatically when [KWSC_AUDIT=1]. *)

val kind : string
(** Snapshot kind tag, ["kwsc.dynamic"]. *)

val save : string -> t -> unit
(** [save path t] writes a durable checkpoint in the v3 snapshot format:
    meta (k, d, counters, {!version} watermark, the resident bucket-size
    column), the live objects, the tombstone bitmap, and one section per
    bucket embedding the static index via {!Orp_kw.encode}. Checkpointing
    a paged restore forces every still-deferred bucket first. Raises
    [Sys_error] on IO failure. *)

val load : ?ooc:bool -> string -> (t, Kwsc_snapshot.Codec.error) result
(** Restore a checkpoint in O(file size) — no static index is rebuilt, so
    a server restart is far cheaper than replaying the input (the SERVE
    bench gates the ratio). Answers, counters, and the watermark round-trip
    exactly. Corrupt input — truncation, flipped bytes, bad magic or kind,
    sections disagreeing with each other or with the structural invariants
    — returns [Error], never raises. v1/v2 checkpoints still load.

    [~ooc] (default [Pager.env_ooc ()], i.e. the [KWSC_OOC] switch)
    selects the out-of-core path: the checkpoint is mapped, meta /
    objects / tombstones are decoded and validated eagerly, but each
    bucket section — its CRC check included — is deferred behind a
    once-cell until the first query that walks it. Time-to-first-query
    then scales with the live-object table, not with the frozen indexes.
    The trade: a bucket whose bytes are corrupt is refused with
    [Codec.Corrupt] (e.g. [Checksum_mismatch "bucket.0"]) raised at its
    first touch rather than surfacing as a load-time [Error], and the
    eager whole-structure invariant sweep is skipped. Pre-v3 checkpoints
    carry no bucket-size column and fall back to the eager path. *)
