(** Rectangle Reporting with Keywords (Corollary 3): data objects are
    d-rectangles; a query reports the data rectangles intersecting the query
    rectangle whose documents contain all keywords.

    Reduction (Appendix F): the rectangle [a1,b1] x ... x [ad,bd] becomes
    the 2d-dimensional point (a1, b1, ..., ad, bd); "intersects q" becomes
    membership in a 2d-rectangle with one-sided ranges. For d = 1 this is
    keyword search on temporal documents [7] (lifespan intervals). *)

open Kwsc_geom

type t

val build :
  ?leaf_weight:int ->
  ?engine:[ `Auto | `Kd | `Dimred | `Lc ] ->
  ?pool:Kwsc_util.Pool.t ->
  k:int ->
  (Rect.t * Kwsc_invindex.Doc.t) array ->
  t
(** @raise Invalid_argument if [k < 2], the input is empty, or data
    rectangles have unbounded sides.

    [engine] picks the underlying 2d-dimensional ORP-KW index: [`Kd] is the
    Theorem-1 kd transform (fine for d = 1, weaker geometric term beyond —
    the Section-3.5 caveat); [`Dimred] is the Theorem-2 dimension-reduction
    structure the corollary actually invokes for 2d >= 3; [`Lc] routes
    through the partition-tree LC-KW index — footnote 3's O(N)-space
    alternative when 2d <= k. [`Auto] (default) chooses by dimension. *)

val k : t -> int

val dim : t -> int
(** Dimensionality d of the data rectangles (the index itself lives in
    2d dimensions). *)

val input_size : t -> int

val query : ?limit:int -> t -> Rect.t -> int array -> int array
(** Sorted ids of the data rectangles intersecting [q] with all keywords.
    [ws] must hold exactly [k t] distinct keywords (the canonical
    {!Transform.validate_keyword_arity} contract, whichever engine is
    active); keywords absent from every document are legal and yield an
    empty answer. *)

val query_stats : ?limit:int -> t -> Rect.t -> int array -> int array * Stats.query

val query_batch :
  ?pool:Kwsc_util.Pool.t ->
  ?limit:int ->
  t ->
  (Rect.t * int array) array ->
  int array array * Stats.query
(** Evaluate a query stream, sharded across the [pool] with per-shard
    counters merged at the end — the {!Batch.run} equivalence contract. *)

val space_stats : t -> Stats.space

val kind : string
(** Snapshot kind tag, ["kwsc.rr-kw"]. *)

val encode : Kwsc_snapshot.Codec.W.t -> t -> unit
val decode : Kwsc_snapshot.Codec.R.t -> t
(** Raw codec (engine tag + inner index), for embedding inside other
    snapshots (the per-shard sections of {!Kwsc_shard}). [decode] raises
    [Kwsc_snapshot.Codec.Corrupt]. *)

val save : string -> t -> unit
val load : string -> (t, Kwsc_snapshot.Codec.error) result
(** Durable snapshot round trip (the active engine — kd, dimred or lc —
    is tagged in the file); see {!Orp_kw.save} / {!Orp_kw.load} for the
    shared contract. *)
