open Kwsc_geom

type engine = E_kd of Orp_kw.t | E_dimred of Dimred.t

type t = {
  engine : engine;
  pts : Point.t array;
  coords : float array array; (* per dimension, sorted coordinates *)
  d : int;
}

let build ?leaf_weight ?(engine = `Auto) ~k objs =
  if Array.length objs = 0 then invalid_arg "Linf_nn_kw.build: empty input";
  let pts = Array.map fst objs in
  let d = Array.length pts.(0) in
  let coords =
    Array.init d (fun j ->
        let c = Array.map (fun p -> p.(j)) pts in
        Array.sort Float.compare c;
        c)
  in
  let engine =
    match engine with `Kd -> `Kd | `Dimred -> `Dimred | `Auto -> if d <= 2 then `Kd else `Dimred
  in
  let engine =
    match engine with
    | `Kd -> E_kd (Orp_kw.build ?leaf_weight ~k objs)
    | `Dimred -> E_dimred (Dimred.build ?leaf_weight ~k objs)
  in
  { engine; pts; coords; d }

let inner_query ?limit t q ws =
  match t.engine with
  | E_kd i -> Orp_kw.query ?limit i q ws
  | E_dimred i -> Dimred.query ?limit i q ws

let k t = match t.engine with E_kd i -> Orp_kw.k i | E_dimred i -> Dimred.k i
let dim t = t.d

let input_size t =
  match t.engine with E_kd i -> Orp_kw.input_size i | E_dimred i -> Dimred.input_size i

let take_nearest t q t' ids =
  let with_dist = Array.map (fun id -> (id, Point.linf_dist q t.pts.(id))) ids in
  Array.sort
    (fun (ia, da) (ib, db) ->
      let c = Float.compare da db in
      if c <> 0 then c else Int.compare ia ib)
    with_dist;
  Array.sub with_dist 0 (min t' (Array.length with_dist))

(* Inclusive L-infinity ball. [Rect.linf_ball] computes q_j +- r in
   floating point, which can round to just inside the true ball and
   silently drop a point whose distance is exactly r — and the candidate
   radii of the binary search below ARE such distances, so the farthest
   sought point can be excluded even at the maximal candidate radius.
   The rounding error of q_j +- r is bounded by a few ulps of
   (|q_j| + r), which dwarfs ulps of the bound itself when the boundary
   coordinate is small (q_j ~ 900, r ~ 889, x_j ~ 5: the error is ~100
   ulps of x_j). Widen each bound by that magnitude-aware slack; a point
   admitted this way lies within ~1e-15 relative distance of r, far
   below any tolerance the t'-NN contract cares about, and [take_nearest]
   recomputes exact distances anyway. *)
let ball q r =
  let slack x = 4.0 *. epsilon_float *. (Float.abs x +. r) in
  Rect.make
    (Array.map (fun x -> x -. r -. slack x) q)
    (Array.map (fun x -> x +. r +. slack x) q)

let query_count t q ~t' ws =
  if Array.length q <> t.d then invalid_arg "Linf_nn_kw.query: dimension mismatch";
  if t' < 1 then invalid_arg "Linf_nn_kw.query: t must be >= 1";
  let probes = ref 0 in
  (* at least t' matching objects within radius r? output-capped probe *)
  let enough r =
    incr probes;
    Array.length (inner_query ~limit:t' t (ball q r) ws) >= t'
  in
  let columns = Array.init t.d (fun j -> (t.coords.(j), q.(j))) in
  let total = Array.fold_left (fun acc (c, _) -> acc + Array.length c) 0 columns in
  let radius rank = Kwsc_util.Sorted.kth_abs_diff columns rank in
  let r_max = radius total in
  if not (enough r_max) then
    (* fewer than t' objects match the keywords at all: return them all *)
    (take_nearest t q t' (inner_query t (ball q r_max) ws), !probes)
  else begin
    (* smallest candidate rank whose radius already holds t' matches *)
    let lo = ref 1 and hi = ref total in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if enough (radius mid) then hi := mid else lo := mid + 1
    done;
    let r_star = radius !lo in
    let ids = inner_query t (ball q r_star) ws in
    (take_nearest t q t' ids, !probes)
  end

let query t q ~t' ws = fst (query_count t q ~t' ws)

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

module C = Kwsc_snapshot.Codec

let kind = "kwsc.linf-nn-kw"

let encode w t =
  C.W.i64 w t.d;
  C.W.float_array2 w t.pts;
  C.W.float_array2 w t.coords;
  match t.engine with
  | E_kd i ->
      C.W.byte w 0;
      Orp_kw.encode w i
  | E_dimred i ->
      C.W.byte w 1;
      Dimred.encode w i

let decode r =
  let d = C.R.i64 r in
  if d < 1 then C.corrupt "Linf_nn_kw: dimension must be >= 1";
  let pts = C.R.float_array2 r in
  let coords = C.R.float_array2 r in
  Array.iter
    (fun p -> if Array.length p <> d then C.corrupt "Linf_nn_kw: point with the wrong dimension")
    pts;
  if Array.length coords <> d then C.corrupt "Linf_nn_kw: coordinate table count <> d";
  Array.iter
    (fun c ->
      if Array.length c <> Array.length pts then
        C.corrupt "Linf_nn_kw: coordinate column length <> number of points")
    coords;
  let engine =
    match C.R.byte r with
    | 0 -> E_kd (Orp_kw.decode r)
    | 1 -> E_dimred (Dimred.decode r)
    | tag -> C.corrupt (Printf.sprintf "Linf_nn_kw: unknown engine tag %d" tag)
  in
  let inner_d = match engine with E_kd i -> Orp_kw.dim i | E_dimred i -> Dimred.dim i in
  if inner_d <> d then C.corrupt "Linf_nn_kw: inner index dimension mismatch";
  { engine; pts; coords; d }

let save path t =
  C.save_file ~path ~kind
    [
      ("meta", C.to_string (fun w ->
           C.W.i64 w (k t);
           C.W.i64 w t.d;
           C.W.i64 w (input_size t)));
      ("index", C.to_string (fun w -> encode w t));
    ]

let load path =
  C.run (fun () ->
      let sections = C.load_kind_exn ~path ~kind in
      let mk, md, mn =
        C.decode_section sections "meta" (fun r ->
            let mk = C.R.i64 r in
            let md = C.R.i64 r in
            let mn = C.R.i64 r in
            (mk, md, mn))
      in
      let t = C.decode_section sections "index" decode in
      if k t <> mk || t.d <> md || input_size t <> mn then
        C.corrupt "Linf_nn_kw: meta section disagrees with the decoded index";
      t)
