open Kwsc_geom

type engine = E_kd of Orp_kw.t | E_dimred of Dimred.t

type t = {
  engine : engine;
  pts : Point.t array;
  coords : float array array; (* per dimension, sorted coordinates *)
  d : int;
}

let build ?leaf_weight ?(engine = `Auto) ~k objs =
  if Array.length objs = 0 then invalid_arg "Linf_nn_kw.build: empty input";
  let pts = Array.map fst objs in
  let d = Array.length pts.(0) in
  let coords =
    Array.init d (fun j ->
        let c = Array.map (fun p -> p.(j)) pts in
        Array.sort Float.compare c;
        c)
  in
  let engine =
    match engine with `Kd -> `Kd | `Dimred -> `Dimred | `Auto -> if d <= 2 then `Kd else `Dimred
  in
  let engine =
    match engine with
    | `Kd -> E_kd (Orp_kw.build ?leaf_weight ~k objs)
    | `Dimred -> E_dimred (Dimred.build ?leaf_weight ~k objs)
  in
  { engine; pts; coords; d }

let inner_query ?limit t q ws =
  match t.engine with
  | E_kd i -> Orp_kw.query ?limit i q ws
  | E_dimred i -> Dimred.query ?limit i q ws

let k t = match t.engine with E_kd i -> Orp_kw.k i | E_dimred i -> Dimred.k i
let dim t = t.d

let input_size t =
  match t.engine with E_kd i -> Orp_kw.input_size i | E_dimred i -> Dimred.input_size i

let take_nearest t q t' ids =
  let with_dist = Array.map (fun id -> (id, Point.linf_dist q t.pts.(id))) ids in
  Array.sort
    (fun (ia, da) (ib, db) ->
      let c = Float.compare da db in
      if c <> 0 then c else Int.compare ia ib)
    with_dist;
  Array.sub with_dist 0 (min t' (Array.length with_dist))

let query_count t q ~t' ws =
  if Array.length q <> t.d then invalid_arg "Linf_nn_kw.query: dimension mismatch";
  if t' < 1 then invalid_arg "Linf_nn_kw.query: t must be >= 1";
  let probes = ref 0 in
  (* at least t' matching objects within radius r? output-capped probe *)
  let enough r =
    incr probes;
    Array.length (inner_query ~limit:t' t (Rect.linf_ball q r) ws) >= t'
  in
  let columns = Array.init t.d (fun j -> (t.coords.(j), q.(j))) in
  let total = Array.fold_left (fun acc (c, _) -> acc + Array.length c) 0 columns in
  let radius rank = Kwsc_util.Sorted.kth_abs_diff columns rank in
  let r_max = radius total in
  if not (enough r_max) then
    (* fewer than t' objects match the keywords at all: return them all *)
    (take_nearest t q t' (inner_query t (Rect.linf_ball q r_max) ws), !probes)
  else begin
    (* smallest candidate rank whose radius already holds t' matches *)
    let lo = ref 1 and hi = ref total in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if enough (radius mid) then hi := mid else lo := mid + 1
    done;
    let r_star = radius !lo in
    let ids = inner_query t (Rect.linf_ball q r_star) ws in
    (take_nearest t q t' ids, !probes)
  end

let query t q ~t' ws = fst (query_count t q ~t' ws)
