open Kwsc_geom
module Doc = Kwsc_invindex.Doc
module Wd = Kwsc_util.Wordops
module C = Kwsc_snapshot.Codec
module P = Kwsc_snapshot.Pager
module Once = Kwsc_util.Pool.Once

(* A bucket's frozen index and id table live behind a once-cell: every
   bucket built in memory is a ready cell, while a paged checkpoint
   restore ([load ~ooc:true]) defers each bucket's decode — and its
   section's lazy CRC — to the first query that walks it. The size
   stays resident (the carry-chain arithmetic needs it without forcing
   anything). *)
type bucket = {
  nids : int; (* length of the id table, always resident *)
  cell : (Orp_kw.t * int array) Once.t; (* frozen index, local -> global ids *)
}

let bucket_of index ids = { nids = Array.length ids; cell = Once.ready (index, ids) }
let b_pair b = Once.force b.cell
let b_ids b = snd (b_pair b)

type t = {
  k : int;
  d : int;
  leaf_weight : int option;
  mutable objects : (Point.t * Doc.t) option array; (* None = deleted *)
  mutable dead : int array;
      (* packed 63-bit tombstone bitmap over assigned ids; bit set exactly
         when the id was assigned and later deleted.  Sized to the capacity
         of [objects]; copied (prefix) into each published epoch. *)
  mutable next_id : int;
  mutable live_count : int;
  mutable dead_pending : int;
      (* tombstones still referenced by a bucket — kept *exact*: deletions
         increment it, and every compaction (carry merge, smallest-level
         merge, global rebuild) credits back the tombstones it drops *)
  mutable version : int;
      (* monotonic logical watermark: one tick per insert and per effective
         delete.  Structural maintenance (bucket merging) does not tick —
         two states with equal watermarks answer queries identically. *)
  mutable buckets : bucket list; (* strictly decreasing capacity *)
}

let create ?leaf_weight ~k ~d () =
  if d < 1 then invalid_arg "Dynamic.create: d must be >= 1";
  if k < 2 then invalid_arg "Dynamic.create: k must be >= 2";
  {
    k;
    d;
    leaf_weight;
    objects = Array.make 16 None;
    dead = Array.make (Wd.nwords 16) 0;
    next_id = 0;
    live_count = 0;
    dead_pending = 0;
    version = 0;
    buckets = [];
  }

let size t = t.live_count
let dim t = t.d
let arity t = t.k
let version t = t.version

let input_size t =
  let n = ref 0 in
  Array.iter (function Some (_, doc) -> n := !n + Doc.size doc | None -> ()) t.objects;
  !n

let buckets t = List.map (fun b -> b.nids) t.buckets

(* Total on every int: an id never assigned (negative, or >= next_id —
   including far beyond the backing array's capacity) is simply not live.
   The unchecked [t.objects.(id)] this replaces raised an untyped
   [Invalid_argument "index out of bounds"] for ids at or beyond the
   array's current capacity. *)
let live t id = if id < 0 || id >= t.next_id then None else t.objects.(id)

let view t = Array.of_list (List.map (fun b -> b.cell) t.buckets)
let tombstone_words t = Array.sub t.dead 0 (Wd.nwords t.next_id)

let build_bucket t ids =
  let objs = Array.map (fun id -> Option.get (live t id)) ids in
  bucket_of (Orp_kw.build ?leaf_weight:t.leaf_weight ~k:t.k objs) ids

(* Rebuild the carry chain: keep merging the incoming group with the
   smallest bucket while the bucket is not more than twice as large —
   the standard binary-counter invariant (bucket sizes grow geometrically).
   [group] is always all-live, so every id a merge filters out is a
   tombstone leaving the buckets: credit it to [dropped] so dead_pending
   stays exact (it used to over-count here, firing spurious global
   rebuilds after insert-heavy interleavings). *)
let rec absorb t dropped group = function
  | [] -> [ build_bucket t group ]
  | b :: rest when b.nids <= 2 * Array.length group ->
      let merged =
        Array.of_list
          (List.filter
             (fun id -> Option.is_some (live t id))
             (Array.to_list (Array.append (b_ids b) group)))
      in
      dropped := !dropped + (b.nids + Array.length group - Array.length merged);
      absorb t dropped merged rest
  | rest -> build_bucket t group :: rest

let rebuild_all t =
  let alive = ref [] in
  for id = t.next_id - 1 downto 0 do
    if Option.is_some (live t id) then alive := id :: !alive
  done;
  t.dead_pending <- 0;
  t.buckets <-
    (match !alive with [] -> [] | l -> [ build_bucket t (Array.of_list l) ])

let insert t ((p, _) as obj) =
  if Array.length p <> t.d then invalid_arg "Dynamic.insert: dimension mismatch";
  if t.next_id = Array.length t.objects then begin
    let cap = 2 * t.next_id in
    let grown = Array.make cap None in
    Array.blit t.objects 0 grown 0 t.next_id;
    t.objects <- grown;
    let gdead = Array.make (Wd.nwords cap) 0 in
    Array.blit t.dead 0 gdead 0 (Array.length t.dead);
    t.dead <- gdead
  end;
  let id = t.next_id in
  t.objects.(id) <- Some obj;
  t.next_id <- id + 1;
  t.live_count <- t.live_count + 1;
  t.version <- t.version + 1;
  (* buckets are kept smallest-first for the carry walk *)
  let dropped = ref 0 in
  t.buckets <- List.rev (absorb t dropped [| id |] (List.rev t.buckets));
  t.dead_pending <- t.dead_pending - !dropped;
  id

let delete t id =
  if id < 0 || id >= t.next_id then invalid_arg "Dynamic.delete: unknown id";
  match t.objects.(id) with
  | None -> ()
  | Some _ ->
      t.objects.(id) <- None;
      let w = Wd.div_bits id in
      t.dead.(w) <- t.dead.(w) lor (1 lsl (id - (Wd.bits * w)));
      t.live_count <- t.live_count - 1;
      t.dead_pending <- t.dead_pending + 1;
      t.version <- t.version + 1;
      if t.live_count = 0 then begin
        (* deleting down to size 0 must not leave all-dead buckets behind:
           with at most 8 tombstones the half-dead trigger below never
           fires, and queries would walk dead buckets forever *)
        t.buckets <- [];
        t.dead_pending <- 0
      end
      else if t.dead_pending >= t.live_count && t.dead_pending > 8 then rebuild_all t

(* Maintenance: fold the two smallest carry-chain levels into one frozen
   layout (dropping their tombstones on the way) and let [absorb] carry
   the merged group further up the chain — the binary-counter invariant
   holds by construction, exactly as for an insert carry.  With a single
   level left, compact it iff it still references tombstones.  Returns
   false (and rebuilds nothing) when there is no productive work.
   Answers and the watermark are unchanged either way. *)
let merge_smallest t =
  let alive ids =
    Array.of_list (List.filter (fun id -> Option.is_some (live t id)) (Array.to_list ids))
  in
  match List.rev t.buckets with
  | [] -> false
  | [ only ] ->
      let group = alive (b_ids only) in
      if Array.length group = only.nids then false
      else begin
        t.dead_pending <- t.dead_pending - (only.nids - Array.length group);
        t.buckets <- (if Array.length group = 0 then [] else [ build_bucket t group ]);
        true
      end
  | b1 :: b2 :: rest ->
      let group = alive (Array.append (b_ids b2) (b_ids b1)) in
      let dropped = ref (b1.nids + b2.nids - Array.length group) in
      let rebuilt = if Array.length group = 0 then rest else absorb t dropped group rest in
      t.dead_pending <- t.dead_pending - !dropped;
      t.buckets <- List.rev rebuilt;
      true

let query t q ws =
  if Rect.dim q <> t.d then invalid_arg "Dynamic.query: dimension mismatch";
  let hits = ref [] in
  List.iter
    (fun b ->
      let index, ids = b_pair b in
      Array.iter
        (fun local ->
          let id = ids.(local) in
          if Option.is_some (live t id) then hits := id :: !hits)
        (Orp_kw.query index q ws))
    t.buckets;
  let out = Array.of_list !hits in
  Array.sort Int.compare out;
  out

module I = Kwsc_util.Invariant

let check_invariants t =
  let bad = ref [] in
  let push x = bad := x :: !bad in
  let vf locus fmt = I.vf ~structure:"Dynamic" ~locus fmt in
  let live_actual = ref 0 in
  Array.iteri
    (fun id slot ->
      match slot with
      | Some (p, _) ->
          if id >= t.next_id then
            push (vf "objects" "object %d stored at or beyond next_id=%d" id t.next_id);
          if Array.length p <> t.d then
            push (vf "objects" "object %d has dimension %d in a %d-d index" id (Array.length p) t.d);
          incr live_actual
      | None -> ())
    t.objects;
  if !live_actual <> t.live_count then
    push (vf "objects" "live_count=%d but %d live objects stored" t.live_count !live_actual);
  (* the tombstone bitmap mirrors the object slots exactly *)
  if Array.length t.dead <> Wd.nwords (Array.length t.objects) then
    push
      (vf "tombstones" "bitmap holds %d words for capacity %d (want %d)" (Array.length t.dead)
         (Array.length t.objects) (Wd.nwords (Array.length t.objects)));
  for id = 0 to t.next_id - 1 do
    let w = Wd.div_bits id in
    let bit =
      w < Array.length t.dead && t.dead.(w) land (1 lsl (id - (Wd.bits * w))) <> 0
    in
    let dead_slot = Option.is_none t.objects.(id) in
    if bit <> dead_slot then
      push
        (vf "tombstones" "id %d: bitmap says %s but slot is %s" id
           (if bit then "dead" else "live")
           (if dead_slot then "dead" else "live"))
  done;
  if t.dead_pending < 0 || t.dead_pending > t.next_id - t.live_count then
    push
      (vf "objects" "dead_pending=%d outside [0, %d] (ids assigned minus live)" t.dead_pending
         (t.next_id - t.live_count));
  (* tombstone debt is bounded: a deletion crossing the threshold rebuilds *)
  if t.dead_pending >= t.live_count && t.dead_pending > 8 then
    push
      (vf "objects" "dead_pending=%d reached live_count=%d without a compacting rebuild"
         t.dead_pending t.live_count);
  if t.live_count = 0 && t.buckets <> [] then
    push (vf "buckets" "no live objects but %d buckets remain" (List.length t.buckets));
  (* buckets: geometric (binary-counter) capacities, largest first, and a
     partition of the live objects *)
  let seen = Hashtbl.create (max 16 t.live_count) in
  let dead_in_buckets = ref 0 in
  List.iteri
    (fun i b ->
      let locus = Printf.sprintf "bucket[%d]" i in
      if b.nids = 0 then push (vf locus "empty bucket");
      let ids = b_ids b in
      if Array.length ids <> b.nids then
        push (vf locus "resident size %d but id table holds %d" b.nids (Array.length ids));
      Array.iter
        (fun id ->
          if id < 0 || id >= t.next_id then
            push (vf locus "object id %d outside [0,%d)" id t.next_id)
          else if Hashtbl.mem seen id then
            push (vf locus "object id %d appears in more than one bucket" id)
          else begin
            Hashtbl.add seen id ();
            if Option.is_none t.objects.(id) then incr dead_in_buckets
          end)
        ids)
    t.buckets;
  (* dead_pending is exact: precisely the tombstones the buckets still
     reference (carry merges credit back what they compact away) *)
  if !dead_in_buckets <> t.dead_pending then
    push
      (vf "buckets" "dead_pending=%d but buckets reference %d tombstones" t.dead_pending
         !dead_in_buckets);
  for id = 0 to t.next_id - 1 do
    match t.objects.(id) with
    | Some _ when not (Hashtbl.mem seen id) ->
        push (vf "buckets" "live object %d is in no bucket" id)
    | _ -> ()
  done;
  let rec sizes_decay = function
    | b1 :: (b2 :: _ as rest) ->
        if b1.nids <= 2 * b2.nids then
          push
            (vf "buckets" "capacities %d and %d break the binary-counter decay (larger <= 2x smaller)"
               b1.nids b2.nids);
        sizes_decay rest
    | _ -> ()
  in
  sizes_decay t.buckets;
  List.rev !bad

(* ------------------------------------------------------------------ *)
(* Durable checkpoints: meta + live objects + tombstone bitmap + one   *)
(* section per bucket (ids table and embedded Orp_kw).  Format v3      *)
(* appended the resident bucket-size column to "meta" so a paged       *)
(* restore can rebuild the carry chain without touching any bucket     *)
(* section; v1/v2 checkpoints still load eagerly.                      *)
(* ------------------------------------------------------------------ *)

let kind = "kwsc.dynamic"

let save path t =
  let sections = ref [] in
  let add name payload = sections := (name, payload) :: !sections in
  add "meta"
    (C.to_string (fun w ->
         C.W.i64 w t.k;
         C.W.i64 w t.d;
         C.W.i64 w (match t.leaf_weight with None -> -1 | Some lw -> lw);
         C.W.i64 w t.next_id;
         C.W.i64 w t.live_count;
         C.W.i64 w t.dead_pending;
         C.W.i64 w t.version;
         C.W.i64 w (List.length t.buckets);
         (* v3: resident bucket sizes, chain order (largest first) *)
         C.W.int_array w (Array.of_list (List.map (fun b -> b.nids) t.buckets))));
  add "objects"
    (C.to_string (fun w ->
         C.W.vint w t.live_count;
         for id = 0 to t.next_id - 1 do
           match t.objects.(id) with
           | None -> ()
           | Some (p, doc) ->
               C.W.vint w id;
               C.W.float_array w p;
               C.W.int_array w (Doc.to_array doc)
         done));
  add "tombstones" (C.to_string (fun w -> C.W.int_array w (tombstone_words t)));
  (* checkpointing a paged restore forces every still-deferred bucket *)
  List.iteri
    (fun i b ->
      let index, ids = b_pair b in
      add
        (Printf.sprintf "bucket.%d" i)
        (C.to_string (fun w ->
             C.W.int_array w ids;
             Orp_kw.encode w index)))
    t.buckets;
  C.save_file ~path ~kind (List.rev !sections)

(* [fmt] is the checkpoint's codec format version: the bucket-size
   column exists only from v3 on.  Range checks live here so both the
   eager and the paged loader refuse garbled counters up front. *)
let decode_meta ~fmt r =
  let k = C.R.i64 r in
  let d = C.R.i64 r in
  let lw = C.R.i64 r in
  let next_id = C.R.i64 r in
  let live_count = C.R.i64 r in
  let dead_pending = C.R.i64 r in
  let version = C.R.i64 r in
  let n_buckets = C.R.i64 r in
  let sizes = if fmt >= 3 then Some (C.R.int_array r) else None in
  if k < 2 || d < 1 then C.corrupt "Dynamic: meta k/d out of range";
  if next_id < 0 || live_count < 0 || live_count > next_id then
    C.corrupt "Dynamic: meta counters out of range";
  if dead_pending < 0 || dead_pending > next_id - live_count then
    C.corrupt "Dynamic: dead_pending outside [0, assigned - live]";
  if version < 0 || n_buckets < 0 then C.corrupt "Dynamic: negative watermark or bucket count";
  (match sizes with
  | None -> ()
  | Some sz ->
      (* the size column must stand on its own: the paged loader trusts
         it to rebuild the carry chain before any bucket is decoded *)
      if Array.length sz <> n_buckets then
        C.corrupt "Dynamic: bucket size column disagrees with the bucket count";
      Array.iter
        (fun s -> if s <= 0 then C.corrupt "Dynamic: non-positive bucket size in meta")
        sz;
      for i = 0 to n_buckets - 2 do
        if sz.(i) <= 2 * sz.(i + 1) then
          C.corrupt "Dynamic: bucket sizes in meta break the binary-counter decay"
      done;
      if Array.fold_left ( + ) 0 sz <> live_count + dead_pending then
        C.corrupt "Dynamic: bucket sizes in meta disagree with live_count + dead_pending");
  ((if lw < 0 then None else Some lw), k, d, next_id, live_count, dead_pending, version,
   n_buckets, sizes)

let decode_objects ~d ~next_id ~live_count r =
  let cap = max 16 next_id in
  let objects = Array.make cap None in
  let n = C.R.vint r in
  if n <> live_count then C.corrupt "Dynamic: objects section disagrees with live_count";
  let prev = ref (-1) in
  for _ = 1 to n do
    let id = C.R.vint r in
    if id <= !prev || id >= next_id then
      C.corrupt "Dynamic: object ids not strictly ascending in [0, next_id)";
    prev := id;
    let p = C.R.float_array r in
    if Array.length p <> d then C.corrupt "Dynamic: object dimension mismatch";
    let ws = C.R.int_array r in
    let m = Array.length ws in
    for j = 0 to m - 1 do
      if ws.(j) < 0 || (j > 0 && ws.(j) <= ws.(j - 1)) then
        C.corrupt "Dynamic: document keywords not sorted distinct nonnegative"
    done;
    objects.(id) <- Some (p, Doc.of_sorted_array ws)
  done;
  objects

let rebuild_dead ~next_id objects =
  let dead = Array.make (Wd.nwords (Array.length objects)) 0 in
  for id = 0 to next_id - 1 do
    if Option.is_none objects.(id) then begin
      let w = Wd.div_bits id in
      dead.(w) <- dead.(w) lor (1 lsl (id - (Wd.bits * w)))
    end
  done;
  dead

(* Decode one bucket section against a restored [t]: the static payload
   must hold exactly the live objects it claims — coordinates and
   documents round-trip bit for bit. *)
let decode_bucket t r =
  let ids = C.R.int_array r in
  let index = Orp_kw.decode r in
  if Orp_kw.size index <> Array.length ids then
    C.corrupt "Dynamic: bucket index size disagrees with its id table";
  if Orp_kw.dim index <> t.d || Orp_kw.k index <> t.k then
    C.corrupt "Dynamic: bucket index k/d disagrees with meta";
  Array.iter
    (fun id ->
      if id < 0 || id >= t.next_id then C.corrupt "Dynamic: bucket id outside [0, next_id)")
    ids;
  let stored_objs = Orp_kw.objects index in
  Array.iteri
    (fun local id ->
      match live t id with
      | None -> () (* tombstone: its data lives only in the bucket *)
      | Some (p, doc) ->
          let sp, sdoc = stored_objs.(local) in
          if sp <> p || Doc.to_array sdoc <> Doc.to_array doc then
            C.corrupt "Dynamic: bucket payload disagrees with the stored objects")
    ids;
  (index, ids)

let restore_counters ~leaf_weight ~k ~d ~next_id ~live_count ~dead_pending ~version objects =
  {
    k;
    d;
    leaf_weight;
    objects;
    dead = rebuild_dead ~next_id objects;
    next_id;
    live_count;
    dead_pending;
    version;
    buckets = [];
  }

let check_tombstones t sections_read =
  let stored = sections_read in
  if stored <> Array.sub t.dead 0 (Wd.nwords t.next_id) then
    C.corrupt "Dynamic: tombstone bitmap disagrees with the stored objects"

let load_eager path =
  C.run (fun () ->
      let fmt, sections = C.load_kind_versioned_exn ~path ~kind in
      let leaf_weight, k, d, next_id, live_count, dead_pending, version, n_buckets, sizes =
        C.decode_section sections "meta" (decode_meta ~fmt)
      in
      let objects = C.decode_section sections "objects" (decode_objects ~d ~next_id ~live_count) in
      let t = restore_counters ~leaf_weight ~k ~d ~next_id ~live_count ~dead_pending ~version objects in
      check_tombstones t (C.decode_section sections "tombstones" C.R.int_array);
      let buckets = ref [] in
      for i = n_buckets - 1 downto 0 do
        let index, ids =
          C.decode_section sections (Printf.sprintf "bucket.%d" i) (decode_bucket t)
        in
        (match sizes with
        | Some sz when Array.length ids <> sz.(i) ->
            C.corrupt "Dynamic: bucket size disagrees with the meta size column"
        | _ -> ());
        buckets := bucket_of index ids :: !buckets
      done;
      t.buckets <- !buckets;
      (match check_invariants t with
      | [] -> ()
      | v :: _ -> C.corrupt ("Dynamic: " ^ I.to_string v));
      t)

(* Paged restore: map the checkpoint, decode meta / objects / tombstones
   eagerly (queries filter every hit through the object table, so it
   must be trusted up front), and defer each bucket section — its CRC
   check and its decode — behind a once-cell forced by the first query
   that walks it.  The carry chain is rebuilt from the v3 size column
   alone; a corrupt bucket therefore surfaces as [Codec.Corrupt] at its
   first touch, not at restore time, and the eager whole-structure
   invariant sweep is skipped (it would force every cell). *)
let load_paged path =
  match P.open_kind path ~kind with
  | Error _ as e -> e
  | Ok pgr when P.version pgr < 3 ->
      (* pre-v3 checkpoints carry no size column: restore eagerly *)
      load_eager path
  | Ok pgr ->
      C.run_light (fun () ->
          let leaf_weight, k, d, next_id, live_count, dead_pending, version, n_buckets, sizes =
            P.decode pgr "meta" (decode_meta ~fmt:(P.version pgr))
          in
          let sizes = Option.get sizes in
          let objects = P.decode pgr "objects" (decode_objects ~d ~next_id ~live_count) in
          let t = restore_counters ~leaf_weight ~k ~d ~next_id ~live_count ~dead_pending ~version objects in
          check_tombstones t (P.decode pgr "tombstones" C.R.int_array);
          let buckets = ref [] in
          for i = n_buckets - 1 downto 0 do
            let name = Printf.sprintf "bucket.%d" i in
            (* presence is framing, checked now; the payload is not *)
            ignore (P.section_length pgr name);
            let expect = sizes.(i) in
            let cell =
              Once.make (fun () ->
                  let index, ids = P.decode pgr name (decode_bucket t) in
                  if Array.length ids <> expect then
                    C.corrupt "Dynamic: bucket size disagrees with the meta size column";
                  (index, ids))
            in
            buckets := { nids = expect; cell } :: !buckets
          done;
          t.buckets <- !buckets;
          t)

let load ?ooc path =
  let ooc = match ooc with Some b -> b | None -> P.env_ooc () in
  if ooc then load_paged path else load_eager path

(* Self-audit every update when KWSC_AUDIT=1 (Invariant.enabled). *)
let insert t obj =
  let id = insert t obj in
  I.auto_check (fun () -> check_invariants t);
  id

let delete t id =
  delete t id;
  I.auto_check (fun () -> check_invariants t)

let merge_smallest t =
  let changed = merge_smallest t in
  if changed then I.auto_check (fun () -> check_invariants t);
  changed
