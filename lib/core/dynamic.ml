open Kwsc_geom
module Doc = Kwsc_invindex.Doc

type bucket = { index : Orp_kw.t; ids : int array (* local -> global *) }

type t = {
  k : int;
  d : int;
  leaf_weight : int option;
  mutable objects : (Point.t * Doc.t) option array; (* None = deleted *)
  mutable next_id : int;
  mutable live_count : int;
  mutable dead_pending : int; (* tombstones not yet compacted away *)
  mutable buckets : bucket list; (* strictly decreasing capacity *)
}

let create ?leaf_weight ~k ~d () =
  if d < 1 then invalid_arg "Dynamic.create: d must be >= 1";
  if k < 2 then invalid_arg "Dynamic.create: k must be >= 2";
  {
    k;
    d;
    leaf_weight;
    objects = Array.make 16 None;
    next_id = 0;
    live_count = 0;
    dead_pending = 0;
    buckets = [];
  }

let size t = t.live_count

let input_size t =
  let n = ref 0 in
  Array.iter (function Some (_, doc) -> n := !n + Doc.size doc | None -> ()) t.objects;
  !n

let buckets t = List.map (fun b -> Array.length b.ids) t.buckets

(* Total on every int: an id never assigned (negative, or >= next_id —
   including far beyond the backing array's capacity) is simply not live.
   The unchecked [t.objects.(id)] this replaces raised an untyped
   [Invalid_argument "index out of bounds"] for ids at or beyond the
   array's current capacity. *)
let live t id = if id < 0 || id >= t.next_id then None else t.objects.(id)

let build_bucket t ids =
  let objs = Array.map (fun id -> Option.get (live t id)) ids in
  { index = Orp_kw.build ?leaf_weight:t.leaf_weight ~k:t.k objs; ids }

(* Rebuild the carry chain: keep merging the incoming group with the
   smallest bucket while the bucket is not more than twice as large —
   the standard binary-counter invariant (bucket sizes grow geometrically). *)
let rec absorb t group = function
  | [] -> [ build_bucket t group ]
  | b :: rest when Array.length b.ids <= 2 * Array.length group ->
      let merged =
        Array.of_list
          (List.filter
             (fun id -> Option.is_some (live t id))
             (Array.to_list (Array.append b.ids group)))
      in
      absorb t merged rest
  | rest -> build_bucket t group :: rest

let rebuild_all t =
  let alive = ref [] in
  for id = t.next_id - 1 downto 0 do
    if Option.is_some (live t id) then alive := id :: !alive
  done;
  t.dead_pending <- 0;
  t.buckets <-
    (match !alive with [] -> [] | l -> [ build_bucket t (Array.of_list l) ])

let insert t ((p, _) as obj) =
  if Array.length p <> t.d then invalid_arg "Dynamic.insert: dimension mismatch";
  if t.next_id = Array.length t.objects then begin
    let grown = Array.make (2 * t.next_id) None in
    Array.blit t.objects 0 grown 0 t.next_id;
    t.objects <- grown
  end;
  let id = t.next_id in
  t.objects.(id) <- Some obj;
  t.next_id <- id + 1;
  t.live_count <- t.live_count + 1;
  (* buckets are kept smallest-first for the carry walk *)
  t.buckets <- List.rev (absorb t [| id |] (List.rev t.buckets));
  id

let delete t id =
  if id < 0 || id >= t.next_id then invalid_arg "Dynamic.delete: unknown id";
  match t.objects.(id) with
  | None -> ()
  | Some _ ->
      t.objects.(id) <- None;
      t.live_count <- t.live_count - 1;
      t.dead_pending <- t.dead_pending + 1;
      if t.dead_pending >= t.live_count && t.dead_pending > 8 then rebuild_all t

let query t q ws =
  if Rect.dim q <> t.d then invalid_arg "Dynamic.query: dimension mismatch";
  let hits = ref [] in
  List.iter
    (fun b ->
      Array.iter
        (fun local ->
          let id = b.ids.(local) in
          if Option.is_some (live t id) then hits := id :: !hits)
        (Orp_kw.query b.index q ws))
    t.buckets;
  let out = Array.of_list !hits in
  Array.sort Int.compare out;
  out

module I = Kwsc_util.Invariant

let check_invariants t =
  let bad = ref [] in
  let push x = bad := x :: !bad in
  let vf locus fmt = I.vf ~structure:"Dynamic" ~locus fmt in
  let live_actual = ref 0 in
  Array.iteri
    (fun id slot ->
      match slot with
      | Some (p, _) ->
          if id >= t.next_id then
            push (vf "objects" "object %d stored at or beyond next_id=%d" id t.next_id);
          if Array.length p <> t.d then
            push (vf "objects" "object %d has dimension %d in a %d-d index" id (Array.length p) t.d);
          incr live_actual
      | None -> ())
    t.objects;
  if !live_actual <> t.live_count then
    push (vf "objects" "live_count=%d but %d live objects stored" t.live_count !live_actual);
  if t.dead_pending < 0 || t.dead_pending > t.next_id - t.live_count then
    push
      (vf "objects" "dead_pending=%d outside [0, %d] (ids assigned minus live)" t.dead_pending
         (t.next_id - t.live_count));
  (* tombstone debt is bounded: a deletion crossing the threshold rebuilds *)
  if t.dead_pending >= t.live_count && t.dead_pending > 8 then
    push
      (vf "objects" "dead_pending=%d reached live_count=%d without a compacting rebuild"
         t.dead_pending t.live_count);
  (* buckets: geometric (binary-counter) capacities, largest first, and a
     partition of the live objects *)
  let seen = Hashtbl.create (max 16 t.live_count) in
  List.iteri
    (fun i b ->
      let locus = Printf.sprintf "bucket[%d]" i in
      if Array.length b.ids = 0 then push (vf locus "empty bucket");
      Array.iter
        (fun id ->
          if id < 0 || id >= t.next_id then
            push (vf locus "object id %d outside [0,%d)" id t.next_id)
          else if Hashtbl.mem seen id then
            push (vf locus "object id %d appears in more than one bucket" id)
          else Hashtbl.add seen id ())
        b.ids)
    t.buckets;
  for id = 0 to t.next_id - 1 do
    match t.objects.(id) with
    | Some _ when not (Hashtbl.mem seen id) ->
        push (vf "buckets" "live object %d is in no bucket" id)
    | _ -> ()
  done;
  let rec sizes_decay = function
    | b1 :: (b2 :: _ as rest) ->
        if Array.length b1.ids <= 2 * Array.length b2.ids then
          push
            (vf "buckets" "capacities %d and %d break the binary-counter decay (larger <= 2x smaller)"
               (Array.length b1.ids) (Array.length b2.ids));
        sizes_decay rest
    | _ -> ()
  in
  sizes_decay t.buckets;
  List.rev !bad

(* Self-audit every update when KWSC_AUDIT=1 (Invariant.enabled). *)
let insert t obj =
  let id = insert t obj in
  I.auto_check (fun () -> check_invariants t);
  id

let delete t id =
  delete t id;
  I.auto_check (fun () -> check_invariants t)
