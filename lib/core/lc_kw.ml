[@@@kwsc.domain_safe]

open Kwsc_geom

type t = { sp : Sp_kw.t }

let build ?leaf_weight ?seed ?pool ~k objs = { sp = Sp_kw.build ?leaf_weight ?seed ?pool ~k objs }
let k t = Sp_kw.k t.sp
let dim t = Sp_kw.dim t.sp
let input_size t = Sp_kw.input_size t.sp
let query ?limit t hs ws = Sp_kw.query_halfspaces ?limit t.sp hs ws

let query_stats ?limit t hs ws =
  Sp_kw.query_stats ?limit t.sp (Polytope.make ~dim:(dim t) hs) ws

let query_batch ?pool ?limit t qs =
  Batch.run ?pool (fun (hs, ws) -> query_stats ?limit t hs ws) qs

let query_rect ?limit t r ws =
  if Rect.dim r <> dim t then invalid_arg "Lc_kw.query_rect: dimension mismatch";
  query ?limit t (Halfspace.of_rect r) ws

let query_via_simplices t hs ws =
  if dim t <> 2 then invalid_arg "Lc_kw.query_via_simplices: dimension must be 2";
  let poly = Polytope.make ~dim:2 hs in
  let simplices = Polytope.triangulate_2d poly in
  let ids =
    List.concat_map (fun s -> Array.to_list (Sp_kw.query_simplex t.sp s ws)) simplices
  in
  Kwsc_util.Sorted.sort_dedup ids

let space_stats t = Sp_kw.space_stats t.sp
let sp_index t = t.sp

let emptiness t hs ws = Array.length (query ~limit:1 t hs ws) = 0

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

module C = Kwsc_snapshot.Codec

let kind = "kwsc.lc-kw"
let encode w t = Sp_kw.encode w t.sp
let decode r = { sp = Sp_kw.decode r }

let save path t =
  C.save_file ~path ~kind
    [
      ("meta", C.to_string (fun w ->
           C.W.i64 w (k t);
           C.W.i64 w (dim t);
           C.W.i64 w (input_size t)));
      ("index", C.to_string (fun w -> encode w t));
    ]

let load path =
  C.run (fun () ->
      let sections = C.load_kind_exn ~path ~kind in
      let mk, md, mn =
        C.decode_section sections "meta" (fun r ->
            let mk = C.R.i64 r in
            let md = C.R.i64 r in
            let mn = C.R.i64 r in
            (mk, md, mn))
      in
      let t = C.decode_section sections "index" decode in
      if k t <> mk || dim t <> md || input_size t <> mn then
        C.corrupt "Lc_kw: meta section disagrees with the decoded index";
      t)
