open Kwsc_geom

type t = { sp : Sp_kw.t }

let build ?leaf_weight ?seed ?pool ~k objs = { sp = Sp_kw.build ?leaf_weight ?seed ?pool ~k objs }
let k t = Sp_kw.k t.sp
let dim t = Sp_kw.dim t.sp
let input_size t = Sp_kw.input_size t.sp
let query ?limit t hs ws = Sp_kw.query_halfspaces ?limit t.sp hs ws

let query_stats ?limit t hs ws =
  Sp_kw.query_stats ?limit t.sp (Polytope.make ~dim:(dim t) hs) ws

let query_batch ?pool ?limit t qs =
  Batch.run ?pool (fun (hs, ws) -> query_stats ?limit t hs ws) qs

let query_rect ?limit t r ws =
  if Rect.dim r <> dim t then invalid_arg "Lc_kw.query_rect: dimension mismatch";
  query ?limit t (Halfspace.of_rect r) ws

let query_via_simplices t hs ws =
  if dim t <> 2 then invalid_arg "Lc_kw.query_via_simplices: dimension must be 2";
  let poly = Polytope.make ~dim:2 hs in
  let simplices = Polytope.triangulate_2d poly in
  let ids =
    List.concat_map (fun s -> Array.to_list (Sp_kw.query_simplex t.sp s ws)) simplices
  in
  Kwsc_util.Sorted.sort_dedup ids

let space_stats t = Sp_kw.space_stats t.sp
let sp_index t = t.sp

let emptiness t hs ws = Array.length (query ~limit:1 t hs ws) = 0
