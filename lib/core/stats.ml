type query = {
  mutable nodes_visited : int;
  mutable covered_nodes : int;
  mutable crossing_nodes : int;
  mutable pivot_checked : int;
  mutable small_scanned : int;
  mutable pruned_empty : int;
  mutable pruned_geom : int;
  mutable reported : int;
  mutable alloc_words : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
}

let fresh_query () =
  {
    nodes_visited = 0;
    covered_nodes = 0;
    crossing_nodes = 0;
    pivot_checked = 0;
    small_scanned = 0;
    pruned_empty = 0;
    pruned_geom = 0;
    reported = 0;
    alloc_words = 0;
    cache_hits = 0;
    cache_misses = 0;
  }

let work q = q.pivot_checked + q.small_scanned + q.nodes_visited

let add_into ~into q =
  into.nodes_visited <- into.nodes_visited + q.nodes_visited;
  into.covered_nodes <- into.covered_nodes + q.covered_nodes;
  into.crossing_nodes <- into.crossing_nodes + q.crossing_nodes;
  into.pivot_checked <- into.pivot_checked + q.pivot_checked;
  into.small_scanned <- into.small_scanned + q.small_scanned;
  into.pruned_empty <- into.pruned_empty + q.pruned_empty;
  into.pruned_geom <- into.pruned_geom + q.pruned_geom;
  into.reported <- into.reported + q.reported;
  into.alloc_words <- into.alloc_words + q.alloc_words;
  into.cache_hits <- into.cache_hits + q.cache_hits;
  into.cache_misses <- into.cache_misses + q.cache_misses

(* Words of minor-heap allocation performed by [f], charged to
   [q.alloc_words]. [Gc.minor_words] is a per-domain monotone counter in
   OCaml 5, so the delta is exact for the calling domain and the batched
   query paths (one accumulator per domain) merge it like any other
   counter. *)
let count_alloc q f =
  let before = Gc.minor_words () in
  let r = f () in
  q.alloc_words <- q.alloc_words + int_of_float (Gc.minor_words () -. before);
  r

let merge a b =
  let m = fresh_query () in
  add_into ~into:m a;
  add_into ~into:m b;
  m

type space = {
  nodes : int;
  max_depth : int;
  max_pivot : int;
  pivot_words : int;
  materialized_words : int;
  bitset_words : int;
  table_words : int;
  total_words : int;
}

let pp_space fmt s =
  Format.fprintf fmt
    "nodes=%d depth=%d max_pivot=%d words{pivot=%d mat=%d bits=%d tbl=%d total=%d}" s.nodes
    s.max_depth s.max_pivot s.pivot_words s.materialized_words s.bitset_words s.table_words
    s.total_words
