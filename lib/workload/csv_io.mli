(** Plain-text persistence for object datasets, used by the CLI.

    One object per line: comma-separated coordinates, a ['|'] separator,
    then semicolon-separated keywords, e.g. ["1.5,2.25|4;7;19"]. *)

open Kwsc_geom

val save : string -> (Point.t * Kwsc_invindex.Doc.t) array -> unit
(** Write a dataset. @raise Sys_error on I/O failure. *)

val load : string -> (Point.t * Kwsc_invindex.Doc.t) array
(** Read a dataset back.
    @raise Failure on a malformed line (with the line number).
    @raise Sys_error on I/O failure. *)

val parse_line : int -> string -> Point.t * Kwsc_invindex.Doc.t
(** Parse one dataset line (["x1,x2|kw1;kw2"]); [lineno] only labels the
    error. Used by [kwsc serve]'s insert command.
    @raise Failure on a malformed line. *)
