open Kwsc_geom

let docs ~rng ~n ~vocab ~theta ~len_min ~len_max =
  if len_min < 1 || len_max < len_min then invalid_arg "Gen.docs: bad length bounds";
  let z = Kwsc_util.Zipf.create ~n:vocab ~theta in
  Array.init n (fun _ ->
      let target = len_min + Kwsc_util.Prng.int rng (len_max - len_min + 1) in
      let seen = Hashtbl.create target in
      (* cap attempts so tiny vocabularies terminate *)
      let attempts = ref 0 in
      while Hashtbl.length seen < target && !attempts < 20 * target do
        incr attempts;
        Hashtbl.replace seen (Kwsc_util.Zipf.sample z rng) ()
      done;
      if Hashtbl.length seen = 0 then Hashtbl.replace seen 1 ();
      Kwsc_invindex.Doc.of_list (Hashtbl.fold (fun w () acc -> w :: acc) seen []))

let points_uniform ~rng ~n ~d ~range =
  Array.init n (fun _ -> Array.init d (fun _ -> Kwsc_util.Prng.float rng range))

let points_clustered ~rng ~n ~d ~clusters ~spread ~range =
  if clusters < 1 then invalid_arg "Gen.points_clustered: need at least one cluster";
  let centers = points_uniform ~rng ~n:clusters ~d ~range in
  Array.init n (fun _ ->
      let c = centers.(Kwsc_util.Prng.int rng clusters) in
      Array.init d (fun j -> c.(j) +. Kwsc_util.Prng.float rng spread -. (spread /. 2.0)))

let points_int ~rng ~n ~d ~max_coord =
  Array.init n (fun _ -> Array.init d (fun _ -> float_of_int (Kwsc_util.Prng.int rng (max_coord + 1))))

let rect_query ~rng ~d ~range ~side =
  let lo = Array.init d (fun _ -> Kwsc_util.Prng.float rng (Float.max 1e-9 (range -. side))) in
  Rect.make lo (Array.map (fun x -> x +. side) lo)

let keywords_by_rank inv ~rank ~k =
  let vocab = Kwsc_invindex.Inverted.vocabulary inv in
  let by_freq = Array.copy vocab in
  Array.sort
    (fun a b -> Int.compare (Kwsc_invindex.Inverted.frequency inv b) (Kwsc_invindex.Inverted.frequency inv a))
    by_freq;
  if rank < 1 || rank + k - 1 > Array.length by_freq then None
  else Some (Array.sub by_freq (rank - 1) k)

let ksi_disjoint_heavy ~rng ~m ~set_size =
  ignore rng;
  Array.init m (fun i -> Array.init set_size (fun j -> (i * set_size) + j))

let poison ~rng ~n ~d ~range ~kws =
  if Array.length kws = 0 then invalid_arg "Gen.poison: need keywords";
  let filler = Array.fold_left max 0 kws + 1 in
  let half = range /. 2.0 in
  let q = Rect.make (Array.make d 0.0) (Array.make d half) in
  let objs =
    Array.init n (fun i ->
        if i mod 2 = 0 then begin
          (* keywords match, point outside the rectangle *)
          let p = Array.init d (fun _ -> half +. 1.0 +. Kwsc_util.Prng.float rng (half -. 1.0)) in
          (p, Kwsc_invindex.Doc.of_list (filler :: Array.to_list kws))
        end
        else begin
          (* point inside the rectangle, keywords missing *)
          let p = Array.init d (fun _ -> Kwsc_util.Prng.float rng half) in
          (p, Kwsc_invindex.Doc.of_list [ filler ])
        end)
  in
  (objs, q)

let topical ~rng ~n ~d ~topics ~vocab_per_topic ~correlation ~range =
  if topics < 1 then invalid_arg "Gen.topical: need at least one topic";
  if correlation < 0.0 || correlation > 1.0 then
    invalid_arg "Gen.topical: correlation must be in [0,1]";
  let centers = points_uniform ~rng ~n:topics ~d ~range in
  let spread = range /. (2.0 *. sqrt (float_of_int topics)) in
  let vocab = topics * vocab_per_topic in
  let z = Kwsc_util.Zipf.create ~n:vocab_per_topic ~theta:0.9 in
  Array.init n (fun _ ->
      let topic = Kwsc_util.Prng.int rng topics in
      let p =
        Array.init d (fun j ->
            centers.(topic).(j) +. Kwsc_util.Prng.float rng spread -. (spread /. 2.0))
      in
      let target = 2 + Kwsc_util.Prng.int rng 4 in
      let seen = Hashtbl.create target in
      let attempts = ref 0 in
      while Hashtbl.length seen < target && !attempts < 20 * target do
        incr attempts;
        let w =
          if Kwsc_util.Prng.float rng 1.0 < correlation then
            (topic * vocab_per_topic) + Kwsc_util.Zipf.sample z rng
          else 1 + Kwsc_util.Prng.int rng vocab
        in
        Hashtbl.replace seen w ()
      done;
      if Hashtbl.length seen = 0 then Hashtbl.replace seen 1 ();
      (p, Kwsc_invindex.Doc.of_list (Hashtbl.fold (fun w () acc -> w :: acc) seen [])))
