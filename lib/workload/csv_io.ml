let save path objs =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Array.iter
        (fun (p, doc) ->
          let coords =
            String.concat "," (List.map (Printf.sprintf "%.17g") (Array.to_list p))
          in
          let kws =
            String.concat ";"
              (List.map string_of_int (Array.to_list (Kwsc_invindex.Doc.to_array doc)))
          in
          output_string oc (coords ^ "|" ^ kws ^ "\n"))
        objs)

let parse_line lineno line =
  match String.split_on_char '|' (String.trim line) with
  | [ coords; kws ] -> (
      try
        let p =
          Array.of_list (List.map float_of_string (String.split_on_char ',' coords))
        in
        let doc =
          Kwsc_invindex.Doc.of_list (List.map int_of_string (String.split_on_char ';' kws))
        in
        (p, doc)
      with Failure _ | Invalid_argument _ ->
        (* float_of_string / int_of_string reject a token, or Doc.of_list
           rejects an empty keyword set *)
        failwith (Printf.sprintf "Csv_io.load: malformed line %d" lineno))
  | _ -> failwith (Printf.sprintf "Csv_io.load: malformed line %d" lineno)

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let out = ref [] in
      let lineno = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           if String.trim line <> "" then out := parse_line !lineno line :: !out
         done
       with End_of_file -> ());
      Array.of_list (List.rev !out))
