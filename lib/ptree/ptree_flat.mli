(** Flat, cache-conscious partition-tree layout and its allocation-free
    query kernel. Produced by {!Ptree.freeze} from a built boxed tree:
    nodes are packed in preorder (left child of [i] is [i + 1], right
    child index stored, [-1] marks a leaf), split directions live in one
    row-major float arena, and every subtree's points occupy one
    contiguous slice of an unboxed coordinate arena, so covered cells
    are reported by a linear scan.

    This module is a tagged query kernel (lint rule R9): no [Hashtbl],
    no list construction. The cell classification still goes through
    {!Polytope.classify} (whose LP owns the cell polytopes); the
    per-point hot loop reuses one scratch point and allocates nothing
    per slot. Slot [s] is the s-th point in arena order — use
    {!payload} / {!get_point} / {!coord} to resolve it. *)

type 'a t

val unsafe_make :
  d:int ->
  n:int ->
  dir:float array ->
  m:float array ->
  right:int array ->
  start:int array ->
  count:int array ->
  coords:float array ->
  payload:'a array ->
  box:float ->
  rng:Kwsc_util.Prng.t ->
  'a t
(** Raw constructor used by {!Ptree.freeze}. Checks only array-length
    consistency; structural soundness is the freezer's contract (audited
    by [Ptree.check_flat] under [KWSC_AUDIT=1]). *)

val defer :
  (unit ->
  int
  * int
  * float array
  * float array
  * int array
  * int array
  * int array
  * float array
  * 'a array
  * float
  * Kwsc_util.Prng.t) ->
  'a t
(** Out-of-core constructor: the thunk materializes
    [(d, n, dir, m, right, start, count, coords, payload, box, rng)] on
    the first query that touches the tree, with {!unsafe_make}'s length
    validation applied then. Same contract as {!Kd_flat.defer}: the
    thunk must be a deterministic pure function and may raise, e.g.
    [Codec.Corrupt] from a lazy CRC check. *)

val backing : 'a t -> [ `Arena | `Deferred ]
(** Is the tree resident ([`Arena]) or still waiting on its first touch
    ([`Deferred])? Forces nothing. *)

val size : 'a t -> int
val dim : 'a t -> int

val num_nodes : 'a t -> int
(** Total packed nodes (internal + leaves), preorder indices [0..num_nodes). *)

val node_right : 'a t -> int -> int
(** Right-child node index of node [i]; [-1] marks a leaf. *)

val node_split : 'a t -> int -> float
val node_start : 'a t -> int -> int
val node_count : 'a t -> int -> int

val node_dir : 'a t -> int -> float array
(** Split direction of internal node [i] (fresh copy). *)

val coord : 'a t -> int -> int -> float
(** [coord t s j] is coordinate [j] of the point in slot [s] (no
    allocation). *)

val payload : 'a t -> int -> 'a

val get_point : 'a t -> int -> Point.t
(** Materializes slot [s] as a fresh point (allocates). *)

val query_polytope_iter : 'a t -> Polytope.t -> (int -> 'a -> unit) -> unit
(** [query_polytope_iter t q f] calls [f slot payload] for every stored
    point inside the convex region [q] — reporting exactly the same
    points as [Ptree.query_polytope] on the source tree (every candidate
    is re-checked with [Polytope.mem], so answers are independent of the
    LP's random pivoting). Covered cells are emitted as contiguous arena
    scans. *)
