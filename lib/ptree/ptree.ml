[@@@kwsc.domain_safe]

type 'a node =
  | Leaf of (Point.t * 'a) array
  | Node of { dir : float array; m : float; left : 'a node; right : 'a node; count : int }

type 'a t = {
  root : 'a node;
  d : int;
  n : int;
  dirs : float array array;
  rng : Kwsc_util.Prng.t; (* for the LP calls at query time *)
  box : float;
}

(* A fixed palette of generic split directions: random unit vectors from the
   seed, plus the coordinate axes so degenerate inputs still split. *)
let make_dirs rng d =
  let num = (2 * d) + 3 in
  Array.init num (fun i ->
      if i < d then Array.init d (fun j -> if i = j then 1.0 else 0.0)
      else begin
        let v = Array.init d (fun _ -> Kwsc_util.Prng.float rng 2.0 -. 1.0) in
        let norm = sqrt (Array.fold_left (fun a x -> a +. (x *. x)) 0.0 v) in
        if norm < 1e-9 then Array.init d (fun j -> if j = 0 then 1.0 else 0.0)
        else Array.map (fun x -> x /. norm) v
      end)

(* Sequential-build cutoff for parallel pools; below this the per-node
   sort no longer amortises a pool task. *)
let par_cutoff = 4096

let build ?(leaf_size = 8) ?(seed = 0x9e3779b9) ?pool pts =
  if leaf_size < 1 then invalid_arg "Ptree.build: leaf_size must be >= 1";
  let n = Array.length pts in
  if n = 0 then invalid_arg "Ptree.build: empty input";
  let d = Array.length (fst pts.(0)) in
  Array.iter
    (fun (p, _) -> if Array.length p <> d then invalid_arg "Ptree.build: mixed dimensions")
    pts;
  let pool = match pool with Some p -> p | None -> Kwsc_util.Pool.default () in
  let fork_below = Kwsc_util.Pool.fork_depth pool in
  let rng = Kwsc_util.Prng.create seed in
  let dirs = make_dirs rng d in
  (* The split palette [dirs] is fixed up front and each recursive call
     owns a fresh sub-array, so forking the two children is safe and the
     tree is identical at every pool size. *)
  let rec go (pts : (Point.t * 'a) array) depth =
    let len = Array.length pts in
    if len <= leaf_size then Leaf pts
    else begin
      let dir = dirs.(depth mod Array.length dirs) in
      let keyed = Array.map (fun (p, v) -> (Linalg.dot dir p, p, v)) pts in
      Array.sort (fun (ka, pa, _) (kb, pb, _) ->
          let c = Float.compare ka kb in
          if c <> 0 then c else Point.compare_lex pa pb)
        keyed;
      let mid = len / 2 in
      let _, pmid, _ = keyed.(mid) in
      let m = Linalg.dot dir pmid in
      let strip = Array.map (fun (_, p, v) -> (p, v)) keyed in
      let left, right =
        if depth < fork_below && len >= par_cutoff then
          Kwsc_util.Pool.fork_join pool
            (fun () -> go (Array.sub strip 0 mid) (depth + 1))
            (fun () -> go (Array.sub strip mid (len - mid)) (depth + 1))
        else
          ( go (Array.sub strip 0 mid) (depth + 1),
            go (Array.sub strip mid (len - mid)) (depth + 1) )
      in
      Node { dir; m; left; right; count = len }
    end
  in
  let box =
    Array.fold_left
      (fun acc (p, _) -> Array.fold_left (fun a x -> Float.max a (abs_float x)) acc p)
      1.0 pts
  in
  { root = go (Array.copy pts) 0; d; n; dirs; rng; box = (box *. 2.0) +. 10.0 }

let size t = t.n
let dim t = t.d

let query_polytope_iter t q f =
  if Polytope.dim q <> t.d then invalid_arg "Ptree.query_polytope_iter: dimension mismatch";
  (* classification is only a pruning device; every reported point is
     re-checked against the query, so LP tolerance cannot cause wrong
     answers *)
  let rec dump = function
    | Leaf pts -> Array.iter (fun (p, v) -> if Polytope.mem q p then f p v) pts
    | Node { left; right; _ } ->
        dump left;
        dump right
  in
  let rec go node cell =
    match Polytope.classify ~box:t.box ~rng:t.rng cell q with
    | Polytope.Disjoint -> ()
    | Polytope.Covered -> dump node
    | Polytope.Crossing -> (
        match node with
        | Leaf pts -> Array.iter (fun (p, v) -> if Polytope.mem q p then f p v) pts
        | Node { dir; m; left; right; _ } ->
            go left (Polytope.add cell (Halfspace.make dir m));
            go right (Polytope.add cell (Halfspace.make (Array.map (fun c -> -.c) dir) (-.m))))
  in
  go t.root (Polytope.make ~dim:t.d [])

let query_polytope t q =
  let out = ref [] in
  query_polytope_iter t q (fun p v -> out := (p, v) :: !out);
  !out

let query_simplex t s = query_polytope t (Polytope.of_simplex s)
let query_halfspaces t hs = query_polytope t (Polytope.make ~dim:t.d hs)

type crossing_stats = { visited : int; covered : int; crossing : int; disjoint_pruned : int }

let stats_polytope t q =
  if Polytope.dim q <> t.d then invalid_arg "Ptree.stats_polytope: dimension mismatch";
  let visited = ref 0 and covered = ref 0 and crossing = ref 0 and pruned = ref 0 in
  let rec go node cell =
    match Polytope.classify ~box:t.box ~rng:t.rng cell q with
    | Polytope.Disjoint -> incr pruned
    | Polytope.Covered ->
        incr visited;
        incr covered
    | Polytope.Crossing -> (
        incr visited;
        incr crossing;
        match node with
        | Leaf _ -> ()
        | Node { dir; m; left; right; _ } ->
            go left (Polytope.add cell (Halfspace.make dir m));
            go right (Polytope.add cell (Halfspace.make (Array.map (fun c -> -.c) dir) (-.m))))
  in
  go t.root (Polytope.make ~dim:t.d []);
  { visited = !visited; covered = !covered; crossing = !crossing; disjoint_pruned = !pruned }

let depth t =
  let rec go = function
    | Leaf _ -> 1
    | Node { left; right; _ } -> 1 + max (go left) (go right)
  in
  go t.root

module I = Kwsc_util.Invariant

let check_invariants t =
  let bad = ref [] in
  let push x = bad := x :: !bad in
  let vf locus fmt = I.vf ~structure:"Ptree" ~locus fmt in
  (* Every leaf point must satisfy every ancestor halfspace: key <= m down
     a left edge, key >= m down a right edge. [Linalg.dot] is deterministic,
     so recomputed keys match the keys used at build time bit-for-bit. *)
  let rec go node locus cons =
    match node with
    | Leaf pts ->
        Array.iter
          (fun (p, _) ->
            if Array.length p <> t.d then
              push (vf locus "point of dimension %d in a %d-d tree" (Array.length p) t.d)
            else
              List.iter
                (fun (dir, m, left_side) ->
                  let key = Linalg.dot dir p in
                  if left_side && key > m then
                    push
                      (vf locus "left-subtree point %s has key %g > split %g"
                         (Point.to_string p) key m)
                  else if (not left_side) && key < m then
                    push
                      (vf locus "right-subtree point %s has key %g < split %g"
                         (Point.to_string p) key m))
                cons)
          pts;
        Array.length pts
    | Node { dir; m; left; right; count } ->
        if Array.length dir <> t.d then
          push (vf locus "direction of dimension %d in a %d-d tree" (Array.length dir) t.d)
        else begin
          let norm = sqrt (Array.fold_left (fun a x -> a +. (x *. x)) 0.0 dir) in
          if abs_float (norm -. 1.0) > 1e-6 then
            push (vf locus "split direction is not unit (norm %g)" norm)
        end;
        let ls = go left (locus ^ ".L") ((dir, m, true) :: cons) in
        let rs = go right (locus ^ ".R") ((dir, m, false) :: cons) in
        if ls + rs <> count then
          push (vf locus "size bookkeeping: count=%d but |left|+|right|=%d" count (ls + rs));
        if abs (ls - rs) > 1 then
          push
            (vf locus "weight-median balance: |left|=%d and |right|=%d differ by more than 1"
               ls rs);
        ls + rs
  in
  let total = go t.root "root" [] in
  if total <> t.n then push (vf "root" "stored size %d <> actual size %d" t.n total);
  List.rev !bad

let freeze t =
  let rec n_nodes = function
    | Leaf _ -> 1
    | Node { left; right; _ } -> 1 + n_nodes left + n_nodes right
  in
  let nn = n_nodes t.root in
  let n_dir = Array.make (nn * t.d) 0.0 in
  let n_m = Array.make nn 0.0 in
  let n_right = Array.make nn (-1) in
  let n_start = Array.make nn 0 in
  let n_count = Array.make nn 0 in
  let coords = Array.make (t.n * t.d) 0.0 in
  (* every leaf is non-empty (the builder rejects empty input and
     weight-median splits keep both halves populated), so a seed payload
     exists *)
  let rec first_payload = function
    | Leaf pts -> snd pts.(0)
    | Node { left; _ } -> first_payload left
  in
  let payload = Array.make t.n (first_payload t.root) in
  let ni = ref 0 and si = ref 0 in
  let rec go node =
    let i = !ni in
    incr ni;
    n_start.(i) <- !si;
    match node with
    | Leaf pts ->
        n_count.(i) <- Array.length pts;
        Array.iter
          (fun (p, v) ->
            let s = !si in
            Array.blit p 0 coords (s * t.d) t.d;
            payload.(s) <- v;
            incr si)
          pts
    | Node { dir; m; left; right; count } ->
        Array.blit dir 0 n_dir (i * t.d) t.d;
        n_m.(i) <- m;
        n_count.(i) <- count;
        go left;
        n_right.(i) <- !ni;
        go right
  in
  go t.root;
  (* the frozen tree owns a copy of the rng so boxed and flat query
     streams cannot perturb each other (answers are rng-independent
     either way: every reported point is re-checked by Polytope.mem) *)
  Ptree_flat.unsafe_make ~d:t.d ~n:t.n ~dir:n_dir ~m:n_m ~right:n_right ~start:n_start
    ~count:n_count ~coords ~payload ~box:t.box
    ~rng:(Kwsc_util.Prng.copy t.rng)

(* Flat-layout auditors: offset monotonicity, arena coverage, and slot
   permutation equality with the boxed tree the layout was frozen from. *)
let check_flat t ft =
  let bad = ref [] in
  let push x = bad := x :: !bad in
  let vf locus fmt = I.vf ~structure:"Ptree.flat" ~locus fmt in
  if Ptree_flat.size ft <> t.n then
    push (vf "root" "flat size %d <> boxed size %d" (Ptree_flat.size ft) t.n);
  if Ptree_flat.dim ft <> t.d then
    push (vf "root" "flat dimension %d <> boxed dimension %d" (Ptree_flat.dim ft) t.d);
  let nn = Ptree_flat.num_nodes ft in
  (* Walk the packed preorder: each call consumes the subtree rooted at
     [i] whose arena slice must begin at [expect] and returns (next node
     index, end slot). Checks offset monotonicity and arena coverage. *)
  let rec walk i expect =
    if i < 0 || i >= nn then begin
      push (vf "layout" "node index %d outside [0,%d)" i nn);
      (nn, expect)
    end
    else begin
      if Ptree_flat.node_start ft i <> expect then
        push
          (vf
             (Printf.sprintf "node[%d]" i)
             "start offset %d breaks arena monotonicity (expected %d)"
             (Ptree_flat.node_start ft i) expect);
      let cnt = Ptree_flat.node_count ft i in
      if cnt < 0 then push (vf (Printf.sprintf "node[%d]" i) "negative count %d" cnt);
      if Ptree_flat.node_right ft i < 0 then (i + 1, expect + cnt)
      else begin
        let next_l, end_l = walk (i + 1) expect in
        if Ptree_flat.node_right ft i <> next_l then
          push
            (vf
               (Printf.sprintf "node[%d]" i)
               "right-child index %d is not the preorder successor %d of the left subtree"
               (Ptree_flat.node_right ft i) next_l);
        let next_r, end_r = walk next_l end_l in
        if end_r - expect <> cnt then
          push
            (vf (Printf.sprintf "node[%d]" i) "count %d <> children coverage %d" cnt
               (end_r - expect));
        (next_r, end_r)
      end
    end
  in
  let last, covered = walk 0 0 in
  if last <> nn then push (vf "layout" "%d packed nodes but preorder walk consumed %d" nn last);
  if covered <> t.n then push (vf "layout" "arena coverage %d slots <> %d points" covered t.n);
  (* permutation equality: the arena must hold exactly the boxed leaves'
     points, in preorder leaf order, payload references included; split
     planes must match bit-for-bit at matching preorder indices *)
  let s = ref 0 and i = ref 0 in
  let rec cmp node =
    let idx = !i in
    incr i;
    match node with
    | Leaf pts ->
        if idx < nn && Ptree_flat.node_right ft idx >= 0 then
          push (vf (Printf.sprintf "node[%d]" idx) "boxed leaf packed as an internal node");
        Array.iter
          (fun (p, v) ->
            let slot = !s in
            incr s;
            if slot >= t.n then ()
            else begin
              for j = 0 to t.d - 1 do
                if not (Float.equal (Ptree_flat.coord ft slot j) p.(j)) then
                  push
                    (vf
                       (Printf.sprintf "slot[%d]" slot)
                       "coordinate %d is %g in the arena but %g in the boxed tree" j
                       (Ptree_flat.coord ft slot j) p.(j))
              done;
              if Ptree_flat.payload ft slot != v then
                push (vf (Printf.sprintf "slot[%d]" slot) "payload differs from the boxed tree")
            end)
          pts
    | Node { dir; m; left; right; _ } ->
        if idx < nn then begin
          if not (Float.equal (Ptree_flat.node_split ft idx) m) then
            push
              (vf (Printf.sprintf "node[%d]" idx) "split offset %g <> boxed %g"
                 (Ptree_flat.node_split ft idx) m);
          let fdir = Ptree_flat.node_dir ft idx in
          for j = 0 to t.d - 1 do
            if not (Float.equal fdir.(j) dir.(j)) then
              push
                (vf (Printf.sprintf "node[%d]" idx) "direction coordinate %d is %g <> boxed %g"
                   j fdir.(j) dir.(j))
          done
        end;
        cmp left;
        cmp right
  in
  cmp t.root;
  if !s <> t.n then push (vf "layout" "boxed tree holds %d points but flat arena %d" !s t.n);
  List.rev !bad

(* Self-audit every build/freeze when KWSC_AUDIT=1 (Invariant.enabled). *)
let build ?leaf_size ?seed ?pool pts =
  let t = build ?leaf_size ?seed ?pool pts in
  I.auto_check (fun () -> check_invariants t);
  t

let freeze t =
  let ft = freeze t in
  I.auto_check (fun () -> check_flat t ft);
  ft
