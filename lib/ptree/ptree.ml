type 'a node =
  | Leaf of (Point.t * 'a) array
  | Node of { dir : float array; m : float; left : 'a node; right : 'a node; count : int }

type 'a t = {
  root : 'a node;
  d : int;
  n : int;
  dirs : float array array;
  rng : Kwsc_util.Prng.t; (* for the LP calls at query time *)
  box : float;
}

(* A fixed palette of generic split directions: random unit vectors from the
   seed, plus the coordinate axes so degenerate inputs still split. *)
let make_dirs rng d =
  let num = (2 * d) + 3 in
  Array.init num (fun i ->
      if i < d then Array.init d (fun j -> if i = j then 1.0 else 0.0)
      else begin
        let v = Array.init d (fun _ -> Kwsc_util.Prng.float rng 2.0 -. 1.0) in
        let norm = sqrt (Array.fold_left (fun a x -> a +. (x *. x)) 0.0 v) in
        if norm < 1e-9 then Array.init d (fun j -> if j = 0 then 1.0 else 0.0)
        else Array.map (fun x -> x /. norm) v
      end)

(* Sequential-build cutoff for parallel pools; below this the per-node
   sort no longer amortises a pool task. *)
let par_cutoff = 4096

let build ?(leaf_size = 8) ?(seed = 0x9e3779b9) ?pool pts =
  if leaf_size < 1 then invalid_arg "Ptree.build: leaf_size must be >= 1";
  let n = Array.length pts in
  if n = 0 then invalid_arg "Ptree.build: empty input";
  let d = Array.length (fst pts.(0)) in
  Array.iter
    (fun (p, _) -> if Array.length p <> d then invalid_arg "Ptree.build: mixed dimensions")
    pts;
  let pool = match pool with Some p -> p | None -> Kwsc_util.Pool.default () in
  let fork_below = Kwsc_util.Pool.fork_depth pool in
  let rng = Kwsc_util.Prng.create seed in
  let dirs = make_dirs rng d in
  (* The split palette [dirs] is fixed up front and each recursive call
     owns a fresh sub-array, so forking the two children is safe and the
     tree is identical at every pool size. *)
  let rec go (pts : (Point.t * 'a) array) depth =
    let len = Array.length pts in
    if len <= leaf_size then Leaf pts
    else begin
      let dir = dirs.(depth mod Array.length dirs) in
      let keyed = Array.map (fun (p, v) -> (Linalg.dot dir p, p, v)) pts in
      Array.sort (fun (ka, pa, _) (kb, pb, _) ->
          let c = Float.compare ka kb in
          if c <> 0 then c else Point.compare_lex pa pb)
        keyed;
      let mid = len / 2 in
      let _, pmid, _ = keyed.(mid) in
      let m = Linalg.dot dir pmid in
      let strip = Array.map (fun (_, p, v) -> (p, v)) keyed in
      let left, right =
        if depth < fork_below && len >= par_cutoff then
          Kwsc_util.Pool.fork_join pool
            (fun () -> go (Array.sub strip 0 mid) (depth + 1))
            (fun () -> go (Array.sub strip mid (len - mid)) (depth + 1))
        else
          ( go (Array.sub strip 0 mid) (depth + 1),
            go (Array.sub strip mid (len - mid)) (depth + 1) )
      in
      Node { dir; m; left; right; count = len }
    end
  in
  let box =
    Array.fold_left
      (fun acc (p, _) -> Array.fold_left (fun a x -> Float.max a (abs_float x)) acc p)
      1.0 pts
  in
  { root = go (Array.copy pts) 0; d; n; dirs; rng; box = (box *. 2.0) +. 10.0 }

let size t = t.n
let dim t = t.d

let query_polytope t q =
  if Polytope.dim q <> t.d then invalid_arg "Ptree.query_polytope: dimension mismatch";
  let out = ref [] in
  (* classification is only a pruning device; every reported point is
     re-checked against the query, so LP tolerance cannot cause wrong
     answers *)
  let rec dump = function
    | Leaf pts ->
        Array.iter (fun ((p, _) as pv) -> if Polytope.mem q p then out := pv :: !out) pts
    | Node { left; right; _ } ->
        dump left;
        dump right
  in
  let rec go node cell =
    match Polytope.classify ~box:t.box ~rng:t.rng cell q with
    | Polytope.Disjoint -> ()
    | Polytope.Covered -> dump node
    | Polytope.Crossing -> (
        match node with
        | Leaf pts ->
            Array.iter (fun ((p, _) as pv) -> if Polytope.mem q p then out := pv :: !out) pts
        | Node { dir; m; left; right; _ } ->
            go left (Polytope.add cell (Halfspace.make dir m));
            go right (Polytope.add cell (Halfspace.make (Array.map (fun c -> -.c) dir) (-.m))))
  in
  go t.root (Polytope.make ~dim:t.d []);
  !out

let query_simplex t s = query_polytope t (Polytope.of_simplex s)
let query_halfspaces t hs = query_polytope t (Polytope.make ~dim:t.d hs)

type crossing_stats = { visited : int; covered : int; crossing : int; disjoint_pruned : int }

let stats_polytope t q =
  if Polytope.dim q <> t.d then invalid_arg "Ptree.stats_polytope: dimension mismatch";
  let visited = ref 0 and covered = ref 0 and crossing = ref 0 and pruned = ref 0 in
  let rec go node cell =
    match Polytope.classify ~box:t.box ~rng:t.rng cell q with
    | Polytope.Disjoint -> incr pruned
    | Polytope.Covered ->
        incr visited;
        incr covered
    | Polytope.Crossing -> (
        incr visited;
        incr crossing;
        match node with
        | Leaf _ -> ()
        | Node { dir; m; left; right; _ } ->
            go left (Polytope.add cell (Halfspace.make dir m));
            go right (Polytope.add cell (Halfspace.make (Array.map (fun c -> -.c) dir) (-.m))))
  in
  go t.root (Polytope.make ~dim:t.d []);
  { visited = !visited; covered = !covered; crossing = !crossing; disjoint_pruned = !pruned }

let depth t =
  let rec go = function
    | Leaf _ -> 1
    | Node { left; right; _ } -> 1 + max (go left) (go right)
  in
  go t.root

module I = Kwsc_util.Invariant

let check_invariants t =
  let bad = ref [] in
  let push x = bad := x :: !bad in
  let vf locus fmt = I.vf ~structure:"Ptree" ~locus fmt in
  (* Every leaf point must satisfy every ancestor halfspace: key <= m down
     a left edge, key >= m down a right edge. [Linalg.dot] is deterministic,
     so recomputed keys match the keys used at build time bit-for-bit. *)
  let rec go node locus cons =
    match node with
    | Leaf pts ->
        Array.iter
          (fun (p, _) ->
            if Array.length p <> t.d then
              push (vf locus "point of dimension %d in a %d-d tree" (Array.length p) t.d)
            else
              List.iter
                (fun (dir, m, left_side) ->
                  let key = Linalg.dot dir p in
                  if left_side && key > m then
                    push
                      (vf locus "left-subtree point %s has key %g > split %g"
                         (Point.to_string p) key m)
                  else if (not left_side) && key < m then
                    push
                      (vf locus "right-subtree point %s has key %g < split %g"
                         (Point.to_string p) key m))
                cons)
          pts;
        Array.length pts
    | Node { dir; m; left; right; count } ->
        if Array.length dir <> t.d then
          push (vf locus "direction of dimension %d in a %d-d tree" (Array.length dir) t.d)
        else begin
          let norm = sqrt (Array.fold_left (fun a x -> a +. (x *. x)) 0.0 dir) in
          if abs_float (norm -. 1.0) > 1e-6 then
            push (vf locus "split direction is not unit (norm %g)" norm)
        end;
        let ls = go left (locus ^ ".L") ((dir, m, true) :: cons) in
        let rs = go right (locus ^ ".R") ((dir, m, false) :: cons) in
        if ls + rs <> count then
          push (vf locus "size bookkeeping: count=%d but |left|+|right|=%d" count (ls + rs));
        if abs (ls - rs) > 1 then
          push
            (vf locus "weight-median balance: |left|=%d and |right|=%d differ by more than 1"
               ls rs);
        ls + rs
  in
  let total = go t.root "root" [] in
  if total <> t.n then push (vf "root" "stored size %d <> actual size %d" t.n total);
  List.rev !bad

(* Self-audit every build when KWSC_AUDIT=1 (Invariant.enabled). *)
let build ?leaf_size ?seed ?pool pts =
  let t = build ?leaf_size ?seed ?pool pts in
  I.auto_check (fun () -> check_invariants t);
  t
