[@@@kwsc.kernel]

(* Flat, cache-conscious partition tree: the boxed BSP tree of ptree.ml
   compiled into implicit preorder arrays (Ptree.freeze). Internal node
   i's left child is i + 1; the right child index is stored (-1 marks a
   leaf). Split directions are packed into one unboxed row-major float
   array, and every subtree's points occupy one contiguous slice of the
   coordinate arena, so covered cells are reported by a linear scan.

   This module is a tagged query kernel (lint rule R9): no Hashtbl, no
   list construction. The geometric classification still goes through
   Polytope (its LP owns the cell polytopes); the per-point hot loop
   reuses one scratch point and allocates nothing per slot.

   The arrays live behind the same backing abstraction as Kd_flat:
   heap arena, or a thunk that materializes them from an mmap-backed
   snapshot on first use ([data] is the single dispatch point). *)

type 'a data = {
  d : int;
  n : int;
  (* per node, preorder; right = -1 marks a leaf *)
  dir : float array; (* num_nodes * d, row i is node i's split direction *)
  m : float array;
  right : int array;
  start : int array;
  count : int array;
  (* point arena: slot s occupies coords[s*d, (s+1)*d), payload.(s) *)
  coords : float array;
  payload : 'a array;
  box : float;
  rng : Kwsc_util.Prng.t; (* for the LP calls at query time *)
}

type 'a state = Arena of 'a data | Deferred of (unit -> 'a data)
type 'a t = { mutable st : 'a state }

(* backing dispatch point; see Kd_flat.data for the contract *)
let data t =
  match t.st with
  | Arena d -> d
  | Deferred f ->
      let d = f () in
      t.st <- Arena d;
      d
[@@kwsc.alloc_ok
  "deferred-miss path: materializes the frozen arrays once on first \
   touch; the query kernel dispatches here once per call, never per node"]

let check ~d ~n ~dir ~m ~right ~start ~count ~coords ~payload ~box ~rng =
  let nn = Array.length right in
  if
    Array.length dir <> nn * d
    || Array.length m <> nn
    || Array.length start <> nn
    || Array.length count <> nn
    || Array.length coords <> n * d
    || Array.length payload <> n
  then invalid_arg "Ptree_flat.unsafe_make: inconsistent array lengths";
  { d; n; dir; m; right; start; count; coords; payload; box; rng }

let unsafe_make ~d ~n ~dir ~m ~right ~start ~count ~coords ~payload ~box ~rng =
  { st = Arena (check ~d ~n ~dir ~m ~right ~start ~count ~coords ~payload ~box ~rng) }

(* out-of-core constructor: [f] decodes the arrays on first touch *)
let defer f =
  {
    st =
      Deferred
        (fun () ->
          let d, n, dir, m, right, start, count, coords, payload, box, rng = f () in
          check ~d ~n ~dir ~m ~right ~start ~count ~coords ~payload ~box ~rng);
  }
[@@kwsc.alloc_ok "construction path: one deferred cell per paged open"]

let backing t = match t.st with Arena _ -> `Arena | Deferred _ -> `Deferred
let size t = (data t).n
let dim t = (data t).d
let num_nodes t = Array.length (data t).right
let node_right t i = (data t).right.(i)
let node_split t i = (data t).m.(i)
let node_start t i = (data t).start.(i)
let node_count t i = (data t).count.(i)

let node_dir t i =
  let t = data t in
  Array.init t.d (fun j -> t.dir.((i * t.d) + j))

let coord t s j =
  let t = data t in
  t.coords.((s * t.d) + j)

let payload t s = (data t).payload.(s)

let get_point t s =
  let t = data t in
  Array.init t.d (fun j -> t.coords.((s * t.d) + j))

let query_polytope_iter t q f =
  let t = data t in
  if Polytope.dim q <> t.d then invalid_arg "Ptree_flat.query_polytope_iter: dimension mismatch";
  let d = t.d in
  (* one scratch point reused for every membership test *)
  let scratch = Array.make d 0.0 in
  let scan_slice s0 len =
    for s = s0 to s0 + len - 1 do
      Array.blit t.coords (s * d) scratch 0 d;
      if Polytope.mem q scratch then f s t.payload.(s)
    done
  in
  (* hoist the optional-argument wrapper: `~box:t.box` would box the
     float into a fresh Some at every node of the descent *)
  let box = Some t.box in
  let rec go i cell =
    match Polytope.classify ?box ~rng:t.rng cell q with
    | Polytope.Disjoint -> ()
    | Polytope.Covered ->
        (* the cell is inside q: contiguous arena scan (membership is
           still re-checked per point, exactly like the boxed dump, so
           LP tolerance cannot cause wrong answers) *)
        scan_slice t.start.(i) t.count.(i)
    | Polytope.Crossing ->
        if t.right.(i) < 0 then scan_slice t.start.(i) t.count.(i)
        else begin
          let dir = Array.init d (fun j -> t.dir.((i * d) + j)) and m = t.m.(i) in
          go (i + 1) (Polytope.add cell (Halfspace.make dir m));
          go t.right.(i)
            (Polytope.add cell (Halfspace.make (Array.map (fun c -> -.c) dir) (-.m)))
        end
  in
  go 0 (Polytope.make ~dim:t.d [])
