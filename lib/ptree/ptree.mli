(** Partition tree on points in R^d with convex-polytope cells.

    This is the Step-1 structure for the LC-KW / SP-KW instantiation
    (Appendix D.1). The paper uses Chan's optimal partition tree [13]; we
    substitute a BSP-style tree — weight-median splits along a rotating set
    of generic directions — which preserves every property the
    transformation framework consumes (space partitioning, fanout 2,
    geometric decay of subtree sizes, O(1) boundary objects per node after
    generic tie-breaking) at the cost of a weaker crossing-number exponent.
    See DESIGN.md, substitution 1; the bench harness measures the actual
    exponent. *)

type 'a t

val build : ?leaf_size:int -> ?seed:int -> ?pool:Kwsc_util.Pool.t -> (Point.t * 'a) array -> 'a t
(** Builds the tree, forking large subtrees near the root as parallel
    [pool] tasks (default {!Kwsc_util.Pool.default}). The split-direction
    palette is drawn from [seed] before any forking, so the tree is
    identical at every pool size.
    @raise Invalid_argument on empty input or mixed dimensions. *)

val size : 'a t -> int
val dim : 'a t -> int

val query_polytope : 'a t -> Polytope.t -> (Point.t * 'a) list
(** All points in the convex region (the conjunction of its halfspaces) —
    an LC-KW geometric query without keywords. *)

val query_polytope_iter : 'a t -> Polytope.t -> (Point.t -> 'a -> unit) -> unit
(** Callback form of [query_polytope]: no result list is built, so hot
    loops can accumulate into preallocated buffers. *)

val query_simplex : 'a t -> Simplex.t -> (Point.t * 'a) list
(** All points in the closed simplex — SP-KW without keywords. *)

val query_halfspaces : 'a t -> Halfspace.t list -> (Point.t * 'a) list
(** Convenience wrapper around [query_polytope]. *)

type crossing_stats = { visited : int; covered : int; crossing : int; disjoint_pruned : int }

val stats_polytope : 'a t -> Polytope.t -> crossing_stats
(** Covered/crossing accounting of one geometric query — used to measure the
    substitute structure's crossing exponent (DESIGN.md substitution 1). *)

val depth : 'a t -> int
(** Height of the tree. *)

val check_invariants : 'a t -> Kwsc_util.Invariant.violation list
(** Deep structural audit: fan-out-2 weight-median balance at every node,
    unit split directions, every point inside every ancestor halfspace, and
    size bookkeeping. Empty when well-formed. [build] runs this
    automatically when [KWSC_AUDIT=1]. *)

val freeze : 'a t -> 'a Ptree_flat.t
(** Compile the boxed tree into the flat preorder layout of {!Ptree_flat}:
    unboxed direction and coordinate arenas, implicit left children,
    contiguous subtree slices. Queries on the frozen form report exactly
    the same points as the boxed kernels. Runs {!check_flat} automatically
    when [KWSC_AUDIT=1]. *)

val check_flat : 'a t -> 'a Ptree_flat.t -> Kwsc_util.Invariant.violation list
(** Flat-layout auditors: start-offset monotonicity along the preorder,
    exact arena coverage, preorder child indexing, bit-equal split planes,
    and slot permutation equality with the boxed tree (coordinates
    bit-equal, payload references shared). *)
