(* kwsc_lint: command-line driver for the repo linter (see lint.mli).

   Usage: kwsc_lint [options] [path ...]
   Paths may be files or directories (recursed).  With no paths, lints
   lib/ bin/ bench/ examples/ relative to the current directory.
   Exit status: 0 clean, 1 violations, 2 usage or parse errors. *)

module Lint = Kwsc_lint_lib.Lint

let usage =
  "kwsc_lint [--allow FILE] [--strict] [--assume-hot] [--assume-lib] [--assume-kernel] \
   [--assume-serve] [--require-mli] [path ...]"

let print_rules () =
  List.iter
    (fun r -> Printf.printf "%s  %s\n" (Lint.rule_id r) (Lint.rule_doc r))
    Lint.all_rules;
  exit 0

let () =
  let allow_file = ref None in
  let strict = ref false in
  let assume_hot = ref false in
  let assume_lib = ref false in
  let assume_kernel = ref false in
  let assume_serve = ref false in
  let require_mli = ref false in
  let rev_paths = ref [] in
  let spec =
    [ ("--allow", Arg.String (fun s -> allow_file := Some s),
       "FILE allowlist of audited exceptions (see tools/lint/allow.sexp)");
      ("--strict", Arg.Set strict,
       " fail (exit 1) when an allowlist entry matches no violation");
      ("--assume-hot", Arg.Set assume_hot,
       " treat every input as a hot-path module (rules R1, R4)");
      ("--assume-lib", Arg.Set assume_lib,
       " treat every input as library code (rule R3)");
      ("--assume-kernel", Arg.Set assume_kernel,
       " treat every input as a query-kernel module (rule R9)");
      ("--assume-serve", Arg.Set assume_serve,
       " treat every input as serving-layer code (rule R13)");
      ("--require-mli", Arg.Set require_mli,
       " require a .mli beside every .ml (rule R7)");
      ("--rules", Arg.Unit print_rules, " list the rules and exit") ]
  in
  Arg.parse spec (fun p -> rev_paths := p :: !rev_paths) usage;
  let paths =
    match List.rev !rev_paths with
    | [] ->
        List.filter Sys.file_exists [ "lib"; "bin"; "bench"; "examples" ]
    | ps -> ps
  in
  let allow =
    match !allow_file with
    | None -> []
    | Some f -> (
        try Lint.load_allow f
        with Sys_error msg | Failure msg ->
          Printf.eprintf "kwsc_lint: %s\n" msg;
          exit 2)
  in
  let config =
    { Lint.assume_hot = !assume_hot; assume_lib = !assume_lib;
      assume_kernel = !assume_kernel; assume_serve = !assume_serve;
      require_mli = !require_mli; allow }
  in
  (match List.filter (fun p -> not (Sys.file_exists p)) paths with
  | [] -> ()
  | missing ->
      Printf.eprintf "kwsc_lint: no such file or directory: %s\n"
        (String.concat " " missing);
      exit 2);
  let files = Lint.lint_paths paths in
  if files = [] then (
    Printf.eprintf "kwsc_lint: no .ml/.mli files under: %s\n"
      (String.concat " " paths);
    exit 2);
  let parse_errors = ref 0 in
  let raw =
    List.concat_map
      (fun f ->
        try Lint.lint_file_raw ~config f
        with exn ->
          incr parse_errors;
          let msg =
            match Location.error_of_exn exn with
            | Some (`Ok e) ->
                Format.asprintf "%a" Location.print_report e
            | _ -> Printexc.to_string exn
          in
          Printf.eprintf "kwsc_lint: cannot parse %s:\n%s\n" f msg;
          [])
      files
  in
  (* Filter once over the whole run, not per file, so an allow entry is
     stale only if it matched nothing anywhere. *)
  let violations, used = Lint.filter_allowed allow raw in
  let violations =
    List.sort
      (fun a b ->
        match String.compare a.Lint.file b.Lint.file with
        | 0 -> Int.compare a.Lint.line b.Lint.line
        | c -> c)
      violations
  in
  List.iter (fun v -> print_endline (Lint.pp_violation v)) violations;
  let stale = Lint.unused_allow allow ~used in
  List.iter
    (fun a ->
      Printf.eprintf
        "kwsc_lint: warning: unused allow entry %s matches no violation; delete it\n"
        (Lint.pp_allow_entry a))
    stale;
  if !parse_errors > 0 then exit 2
  else if violations <> [] then (
    Printf.printf "kwsc-lint: %d violation(s) in %d file(s) checked\n"
      (List.length violations) (List.length files);
    exit 1)
  else if !strict && stale <> [] then (
    Printf.printf "kwsc-lint: %d stale allow entr(y/ies), %d files checked\n"
      (List.length stale) (List.length files);
    exit 1)
  else
    Printf.printf "kwsc-lint: OK (%d files checked, %d allowed)\n"
      (List.length files) (List.length used)
