; kwsc-lint allowlist — audited exceptions to the lint rules.
; One entry per line: (RULE PATH [LINE])
;   RULE  rule id, e.g. R5
;   PATH  matched as a path-segment suffix of the offending file
;   LINE  optional exact line; omit to allow the rule anywhere in the file
; Keep this list short: every entry is a reviewed, justified exception.
; Example (commented out):
;   (R5 lib/geom/linalg.ml 42)

; pool.ml IS the concurrency abstraction R8 protects: the one place
; allowed to touch Domain/Atomic/Mutex/Condition directly.
(R8 lib/util/pool.ml)
