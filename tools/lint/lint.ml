(* Repo-specific static analysis over the OCaml parsetree (no typing).
   See lint.mli for the rule catalogue and the rationale for the
   syntactic approximations used by the type-dependent rules. *)

type rule = R1 | R2 | R3 | R4 | R5 | R6 | R7 | R8 | R9 | R10 | R11 | R12 | R13 | R14

let all_rules = [ R1; R2; R3; R4; R5; R6; R7; R8; R9; R10; R11; R12; R13; R14 ]

let rule_id = function
  | R1 -> "R1"
  | R2 -> "R2"
  | R3 -> "R3"
  | R4 -> "R4"
  | R5 -> "R5"
  | R6 -> "R6"
  | R7 -> "R7"
  | R8 -> "R8"
  | R9 -> "R9"
  | R10 -> "R10"
  | R11 -> "R11"
  | R12 -> "R12"
  | R13 -> "R13"
  | R14 -> "R14"

let rule_doc = function
  | R1 -> "polymorphic comparison on float-bearing data in a hot-path module"
  | R2 -> "Obj.magic defeats the type system"
  | R3 -> "printing from library code (lib/): diagnostics belong in bin/ or bench/"
  | R4 -> "accidentally-quadratic list idiom (List.nth / left-nested @) in a hot-path module"
  | R5 -> "exact float equality: use Float.equal or an explicit tolerance"
  | R6 -> "blanket 'try ... with _ ->' swallows every exception, including Out_of_memory"
  | R7 -> "library module lacks an interface (.mli)"
  | R8 -> "raw multicore primitive in library code: Pool (lib/util/pool.ml) owns them all"
  | R9 ->
      "Hashtbl or list construction in a query-kernel module: flat kernels report through \
       callbacks and Ibuf, never per-result heap blocks"
  | R10 ->
      "Marshal defeats the versioned snapshot codec: no version, no checksum, breaks across \
       compilers; persist through Kwsc_snapshot.Codec (only test/ may use Marshal)"
  | R11 ->
      "raw container word access outside lib/util/container.ml: Container.unsafe_words \
       exposes the packed bitmap representation; go through mem/iter/inter_into instead"
  | R12 ->
      "shard-id arithmetic outside lib/shard/: Plan.owner_of is the partition function; \
       code that re-derives owners drifts from the router — route through Kwsc_shard"
  | R13 ->
      "shared mutable in the serving layer outside the published epoch: the Atomic epoch \
       cell in lib/serve/serve.ml is the only cross-domain state lib/serve may hold"
  | R14 ->
      "mmap primitive outside the pager: Unix.map_file and Bigarray belong to \
       lib/snapshot/pager.ml alone — consume mapped sections through Pager's typed \
       accessors, which own the lazy CRC discipline"

type violation = { file : string; line : int; rule : rule; message : string }

let pp_violation v =
  Printf.sprintf "%s:%d: [%s] %s" v.file v.line (rule_id v.rule) v.message

type allow_entry = { a_rule : string; a_path : string; a_line : int option }

type config = {
  assume_hot : bool;
  assume_lib : bool;
  assume_kernel : bool;
  assume_serve : bool;
  require_mli : bool;
  allow : allow_entry list;
}

let default_config =
  { assume_hot = false; assume_lib = false; assume_kernel = false; assume_serve = false;
    require_mli = false; allow = [] }

(* ------------------------------------------------------------------ *)
(* Path classification                                                *)
(* ------------------------------------------------------------------ *)

let segments path =
  String.split_on_char '/' path |> List.filter (fun s -> s <> "" && s <> ".")

let rec is_prefix pre l =
  match (pre, l) with
  | [], _ -> true
  | p :: ps, x :: xs -> String.equal p x && is_prefix ps xs
  | _ :: _, [] -> false

let rec has_subpath sub = function
  | [] -> false
  | _ :: tl as l -> is_prefix sub l || has_subpath sub tl

let hot_dirs =
  [ [ "lib"; "kdtree" ]; [ "lib"; "ptree" ]; [ "lib"; "core" ]; [ "lib"; "geom" ] ]

let path_is_hot path =
  let segs = segments path in
  List.exists (fun d -> has_subpath d segs) hot_dirs

let path_in_lib path = List.mem "lib" (segments path)

(* R11: the one module allowed to look at raw container words is the
   container itself — everything else goes through the typed API. *)
let path_is_container path =
  has_subpath [ "lib"; "util"; "container.ml" ] (segments path)

(* R12: only the shard layer itself may compute shard ownership — a
   second copy of the partition arithmetic would silently diverge from
   the router's. *)
let path_is_shard path = has_subpath [ "lib"; "shard" ] (segments path)

(* R10: Marshal is banned everywhere except test/ — the differential
   suites may digest in-memory structures, but nothing durable may be
   written with it. *)
let path_in_test path = List.mem "test" (segments path)

(* R13: the serving layer's one sanctioned cross-domain mutable is the
   published epoch cell in serve.ml (DESIGN.md section 14); a second
   Atomic anywhere else under lib/serve is a second shared-state
   channel and silently breaks the single-writer epoch protocol. *)
let path_in_serve path = has_subpath [ "lib"; "serve" ] (segments path)

let path_is_serve_writer path =
  has_subpath [ "lib"; "serve"; "serve.ml" ] (segments path)

(* R14: the pager is the one module allowed to map files and address the
   mapping — everything else reads sections through its typed accessors,
   so the lazy-CRC discipline (no bytes before the checksum passes) has
   a single owner. *)
let path_is_pager path = has_subpath [ "lib"; "snapshot"; "pager.ml" ] (segments path)

(* ------------------------------------------------------------------ *)
(* Allowlist                                                          *)
(* ------------------------------------------------------------------ *)

let parse_allow text =
  let parse_line lineno line =
    let line =
      match String.index_opt line ';' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    let toks =
      String.map (function '(' | ')' | '\t' | '\r' -> ' ' | c -> c) line
      |> String.split_on_char ' '
      |> List.filter (fun s -> s <> "")
    in
    match toks with
    | [] -> None
    | [ r; p ] -> Some { a_rule = r; a_path = p; a_line = None }
    | [ r; p; l ] -> (
        match int_of_string_opt l with
        | Some i -> Some { a_rule = r; a_path = p; a_line = Some i }
        | None ->
            failwith
              (Printf.sprintf "allowlist line %d: bad line number %S" lineno l))
    | _ ->
        failwith
          (Printf.sprintf "allowlist line %d: expected (RULE PATH [LINE])" lineno)
  in
  String.split_on_char '\n' text
  |> List.mapi (fun i l -> parse_line (i + 1) l)
  |> List.filter_map Fun.id

let load_allow file =
  let ic = open_in_bin file in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse_allow (really_input_string ic (in_channel_length ic)))

let suffix_match pat file =
  let p = segments pat and f = segments file in
  let seg_eq a b =
    List.length a = List.length b && List.for_all2 String.equal a b
  in
  let rec tails = function [] -> [ [] ] | _ :: tl as l -> l :: tails tl in
  String.equal pat file || List.exists (fun t -> seg_eq t p) (tails f)

let entry_matches a v =
  String.equal a.a_rule (rule_id v.rule)
  && suffix_match a.a_path v.file
  && match a.a_line with None -> true | Some l -> l = v.line

let allowed allow v = List.exists (fun a -> entry_matches a v) allow

let filter_allowed allow vs =
  let used = Hashtbl.create 8 in
  let kept =
    List.filter
      (fun v ->
        match List.filter (fun a -> entry_matches a v) allow with
        | [] -> true
        | ms ->
            List.iter (fun a -> Hashtbl.replace used a ()) ms;
            false)
      vs
  in
  (kept, List.filter (Hashtbl.mem used) allow)

let unused_allow allow ~used = List.filter (fun a -> not (List.mem a used)) allow

let pp_allow_entry a =
  match a.a_line with
  | None -> Printf.sprintf "(%s %s)" a.a_rule a.a_path
  | Some l -> Printf.sprintf "(%s %s %d)" a.a_rule a.a_path l

(* ------------------------------------------------------------------ *)
(* Syntactic predicates                                               *)
(* ------------------------------------------------------------------ *)

open Parsetree

(* R9: query-kernel modules self-identify with a [@@@kwsc.kernel]
   floating attribute rather than a hard-coded path list — tagging the
   file is also what opts it into the typed allocation analysis
   (tools/analyze, rule A1), so the two tiers cannot drift apart. *)
let structure_has_attr name str =
  List.exists
    (fun item ->
      match item.pstr_desc with
      | Pstr_attribute a -> String.equal a.attr_name.Location.txt name
      | _ -> false)
    str

let flatten_opt lid = try Some (Longident.flatten lid) with _ -> None

let ident_path e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> flatten_opt txt
  | _ -> None

let unqualify = function
  | ("Stdlib" | "Pervasives") :: rest -> rest
  | p -> p

let comparison_ops = [ "="; "<>"; "=="; "!="; "<"; "<="; ">"; ">=" ]
let equality_ops = [ "="; "<>"; "=="; "!=" ]

(* R8: modules whose direct use means unmanaged concurrency.  Library
   code must go through the Pool abstraction; only pool.ml itself (via
   the allowlist) touches these. *)
let multicore_heads = [ "Domain"; "Atomic"; "Mutex"; "Condition"; "Thread"; "Semaphore" ]

let float_const_idents =
  [ "infinity"; "neg_infinity"; "nan"; "epsilon_float"; "max_float"; "min_float" ]

let float_arith_ops =
  [ "+."; "-."; "*."; "/."; "**"; "~-."; "sqrt"; "abs_float"; "float_of_int";
    "atan2"; "exp"; "log"; "log10"; "sin"; "cos"; "tan"; "ceil"; "floor";
    "mod_float" ]

let float_returning_float_fns =
  [ "of_int"; "add"; "sub"; "mul"; "div"; "neg"; "abs"; "sqrt"; "pow"; "rem";
    "min"; "max"; "round"; "trunc"; "succ"; "pred"; "fma" ]

let ends_with ~suffix l =
  let n = List.length l and m = List.length suffix in
  n >= m && is_prefix suffix (List.filteri (fun i _ -> i >= n - m) l)

let rec type_is_float_scalar t =
  match t.ptyp_desc with
  | Ptyp_constr ({ txt; _ }, []) -> (
      match flatten_opt txt with
      | Some p ->
          let u = unqualify p in
          u = [ "float" ] || ends_with ~suffix:[ "Float"; "t" ] u
      | None -> false)
  | Ptyp_alias (t, _) | Ptyp_poly (_, t) -> type_is_float_scalar t
  | _ -> false

(* Abstract float-bearing types the repo cares about: geometry values and
   float arrays.  Extend here when a new hot-path abstract type appears. *)
let rec type_is_float_abstract t =
  match t.ptyp_desc with
  | Ptyp_constr ({ txt; _ }, args) -> (
      match flatten_opt txt with
      | None -> false
      | Some p -> (
          let u = unqualify p in
          ends_with ~suffix:[ "Point"; "t" ] u
          || ends_with ~suffix:[ "Rect"; "t" ] u
          ||
          match (u, args) with
          | [ "array" ], [ a ] | [ "list" ], [ a ] | [ "option" ], [ a ] ->
              type_is_float_scalar a || type_is_float_abstract a
          | _ -> false))
  | Ptyp_tuple ts -> List.exists type_is_float_scalar ts
  | Ptyp_alias (t, _) | Ptyp_poly (_, t) -> type_is_float_abstract t
  | _ -> false

let rec expr_float_scalar e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_ident _ -> (
      match ident_path e with
      | Some p -> (
          match unqualify p with
          | [ c ] -> List.mem c float_const_idents
          | [ "Float"; c ] ->
              List.mem c [ "infinity"; "neg_infinity"; "nan"; "pi"; "epsilon";
                           "max_float"; "min_float"; "zero"; "one"; "minus_one" ]
          | _ -> false)
      | None -> false)
  | Pexp_apply (f, args) -> (
      match ident_path f with
      | Some p -> (
          match unqualify p with
          (* min/max stay polymorphic: float-bearing only if an operand is. *)
          | [ ("min" | "max") ] ->
              List.exists (fun (_, a) -> expr_float_scalar a) args
          | [ op ] when List.mem op float_arith_ops -> true
          | [ "Float"; fn ] -> List.mem fn float_returning_float_fns
          | _ -> false)
      | None -> false)
  | Pexp_constraint (_, ty) -> type_is_float_scalar ty
  | Pexp_field (_, _) -> false
  | _ -> false

let expr_float_abstract e =
  match e.pexp_desc with
  | Pexp_constraint (_, ty) -> type_is_float_abstract ty
  | _ -> false

(* Printing detection for R3.  [`Direct] is always a violation inside
   lib/; [`Channelled] only when aimed at stdout/stderr (formatter-
   parametric pretty-printers are the sanctioned idiom). *)
let print_kind u =
  match u with
  | [ f ] when
      List.mem f
        [ "print_string"; "print_endline"; "print_newline"; "print_int";
          "print_float"; "print_char"; "print_bytes"; "prerr_string";
          "prerr_endline"; "prerr_newline"; "prerr_int"; "prerr_float";
          "prerr_char"; "prerr_bytes" ] ->
      Some `Direct
  | [ "Printf"; ("printf" | "eprintf") ] | [ "Format"; ("printf" | "eprintf") ]
    ->
      Some `Direct
  | [ "Format"; f ] when String.length f >= 6 && String.sub f 0 6 = "print_" ->
      Some `Direct
  | [ ("Printf" | "Format"); "fprintf" ] -> Some `Channelled
  | _ -> None

let is_std_sink e =
  match ident_path e with
  | Some p -> (
      match unqualify p with
      | [ ("stdout" | "stderr") ]
      | [ "Format"; ("std_formatter" | "err_formatter") ]
      | [ ("std_formatter" | "err_formatter") ] ->
          true
      | _ -> false)
  | None -> false

(* ------------------------------------------------------------------ *)
(* The traversal                                                      *)
(* ------------------------------------------------------------------ *)

let lint_structure config ~file str =
  let out = ref [] in
  let add rule loc message =
    out :=
      { file; line = loc.Location.loc_start.Lexing.pos_lnum; rule; message }
      :: !out
  in
  let hot = config.assume_hot || path_is_hot file in
  let lib = config.assume_lib || path_in_lib file in
  let kernel = config.assume_kernel || structure_has_attr "kwsc.kernel" str in
  let marshal_banned = not (path_in_test file) in
  let words_banned = not (path_is_container file) in
  let owner_banned = not (path_is_shard file) in
  let serve = config.assume_serve || path_in_serve file in
  let serve_writer = path_is_serve_writer file in
  let mmap_banned = not (path_is_pager file) in
  (* Function idents already reported (or cleared) as the head of an
     application are marked here so the bare-ident pass skips them. *)
  let consumed = Hashtbl.create 64 in
  let key loc =
    (loc.Location.loc_start.Lexing.pos_lnum, loc.Location.loc_start.Lexing.pos_cnum)
  in
  let left_nested_append lhs =
    match lhs.pexp_desc with
    | Pexp_apply (g, _ :: _ :: _) -> (
        match ident_path g with
        | Some gp -> unqualify gp = [ "@" ]
        | None -> false)
    | _ -> false
  in
  let check_apply f args =
    match ident_path f with
    | None -> ()
    | Some p ->
        Hashtbl.replace consumed (key f.pexp_loc) ();
        let u = unqualify p in
        let loc = f.pexp_loc in
        (match u with
        | [ "compare" ] when hot ->
            add R1 loc
              "polymorphic compare in hot-path module; use Float.compare, \
               Int.compare or Point.compare_lex"
        | [ "Obj"; "magic" ] -> add R2 loc "Obj.magic is forbidden"
        | "Marshal" :: _ when marshal_banned ->
            add R10 loc
              (Printf.sprintf
                 "%s writes unversioned, unchecksummed bytes; persist through \
                  Kwsc_snapshot.Codec (Marshal is allowed only under test/)"
                 (String.concat "." u))
        | [ "List"; "nth" ] when hot ->
            add R4 loc "List.nth is O(n); use arrays or restructure the loop"
        | _ when words_banned && ends_with ~suffix:[ "Container"; "unsafe_words" ] u ->
            add R11 loc
              (Printf.sprintf
                 "%s reaches into the packed container words; only \
                  lib/util/container.ml may — use mem/iter/inter_into/dense_bytes"
                 (String.concat "." u))
        | _ when owner_banned && ends_with ~suffix:[ "Plan"; "owner_of" ] u ->
            add R12 loc
              (Printf.sprintf
                 "%s re-derives shard ownership; the partition function is \
                  private to lib/shard/ — route placement through Kwsc_shard"
                 (String.concat "." u))
        | "Bigarray" :: _ when mmap_banned ->
            add R14 loc
              (Printf.sprintf
                 "%s addresses a raw mapping; only lib/snapshot/pager.ml may — \
                  consume sections through Pager's typed accessors"
                 (String.concat "." u))
        | _ when mmap_banned && ends_with ~suffix:[ "Unix"; "map_file" ] u ->
            add R14 loc
              (Printf.sprintf
                 "%s maps a file outside the pager; lib/snapshot/pager.ml owns \
                  the mapping and its lazy CRC discipline"
                 (String.concat "." u))
        | "Hashtbl" :: _ when kernel ->
            add R9 loc
              (Printf.sprintf
                 "%s in a query-kernel module; kernels address flat arrays (vocabulary \
                  ranks, arena offsets), never hash tables"
                 (String.concat "." u))
        | "Atomic" :: _ :: _ when serve ->
            if not serve_writer then
              add R13 loc
                (Printf.sprintf
                   "%s in the serving layer outside serve.ml; the published epoch \
                    cell in lib/serve/serve.ml is the only sanctioned cross-domain \
                    mutable (single-writer epoch protocol)"
                   (String.concat "." u))
        | m :: _ :: _ when lib && List.mem m multicore_heads ->
            add R8 loc
              (Printf.sprintf
                 "%s in library code; route concurrency through Kwsc_util.Pool \
                  (only lib/util/pool.ml may use %s directly)"
                 (String.concat "." u) m)
        | _ -> ());
        (match print_kind u with
        | Some `Direct when lib ->
            add R3 loc
              (Printf.sprintf "%s prints from library code; move diagnostics \
                               to bin/ or bench/" (String.concat "." u))
        | Some `Channelled when lib -> (
            match args with
            | (_, sink) :: _ when is_std_sink sink ->
                add R3 loc
                  (Printf.sprintf "%s aimed at a standard sink from library \
                                   code" (String.concat "." u))
            | _ -> ())
        | _ -> ());
        (if hot && u = [ "@" ] then
           match args with
           | (_, lhs) :: _ when left_nested_append lhs ->
               add R4 loc
                 "left-nested (@) is quadratic; right-nest, or use \
                  List.rev_append / List.concat"
           | _ -> ());
        match u with
        | [ op ] when List.mem op comparison_ops -> (
            match args with
            | (_, l) :: (_, r) :: _ ->
                let abstract = expr_float_abstract l || expr_float_abstract r in
                let scalar = expr_float_scalar l || expr_float_scalar r in
                if hot && abstract then
                  add R1 loc
                    (Printf.sprintf
                       "polymorphic ( %s ) on a float-bearing abstract value; \
                        use a specialized comparator" op)
                else if scalar && List.mem op equality_ops then
                  add R5 loc
                    (Printf.sprintf
                       "( %s ) on float operands; use Float.equal or a \
                        tolerance" op)
            | _ ->
                if hot then
                  add R1 loc
                    (Printf.sprintf
                       "partially applied polymorphic ( %s ) in hot-path \
                        module" op))
        | _ -> ()
  in
  let check_bare_ident e =
    if not (Hashtbl.mem consumed (key e.pexp_loc)) then
      match ident_path e with
      | None -> ()
      | Some p -> (
          let u = unqualify p in
          let loc = e.pexp_loc in
          match u with
          | [ "compare" ] when hot ->
              add R1 loc
                "polymorphic compare passed as a value in hot-path module"
          | [ op ] when hot && List.mem op comparison_ops ->
              add R1 loc
                (Printf.sprintf
                   "polymorphic ( %s ) passed as a value in hot-path module" op)
          | [ "Obj"; "magic" ] -> add R2 loc "Obj.magic is forbidden"
          | "Marshal" :: _ when marshal_banned ->
              add R10 loc
                (Printf.sprintf "%s passed as a value; persist through \
                                 Kwsc_snapshot.Codec" (String.concat "." u))
          | [ "List"; "nth" ] when hot ->
              add R4 loc "List.nth passed as a value in hot-path module"
          | _ when words_banned && ends_with ~suffix:[ "Container"; "unsafe_words" ] u ->
              add R11 loc
                (Printf.sprintf
                   "%s passed as a value; raw container words are private to \
                    lib/util/container.ml" (String.concat "." u))
          | _ when owner_banned && ends_with ~suffix:[ "Plan"; "owner_of" ] u ->
              add R12 loc
                (Printf.sprintf
                   "%s passed as a value; shard ownership is private to \
                    lib/shard/" (String.concat "." u))
          | "Bigarray" :: _ when mmap_banned ->
              add R14 loc
                (Printf.sprintf
                   "%s passed as a value; raw mappings are private to \
                    lib/snapshot/pager.ml" (String.concat "." u))
          | _ when mmap_banned && ends_with ~suffix:[ "Unix"; "map_file" ] u ->
              add R14 loc
                (Printf.sprintf
                   "%s passed as a value; file mapping is private to \
                    lib/snapshot/pager.ml" (String.concat "." u))
          | "Hashtbl" :: _ when kernel ->
              add R9 loc
                (Printf.sprintf "%s passed as a value in a query-kernel module"
                   (String.concat "." u))
          | "Atomic" :: _ :: _ when serve ->
              if not serve_writer then
                add R13 loc
                  (Printf.sprintf
                     "%s passed as a value in the serving layer outside serve.ml; \
                      the published epoch cell in lib/serve/serve.ml is the only \
                      sanctioned cross-domain mutable"
                     (String.concat "." u))
          | m :: _ :: _ when lib && List.mem m multicore_heads ->
              add R8 loc
                (Printf.sprintf "%s passed as a value in library code; route \
                                 concurrency through Kwsc_util.Pool"
                   (String.concat "." u))
          | _ -> (
              match print_kind u with
              | Some `Direct when lib ->
                  add R3 loc
                    (Printf.sprintf "%s passed as a value in library code"
                       (String.concat "." u))
              | _ -> ()))
  in
  let expr_iter self e =
    (match e.pexp_desc with
    | Pexp_apply (f, args) -> check_apply f args
    | Pexp_ident _ -> check_bare_ident e
    | Pexp_construct ({ txt = Longident.Lident "::"; _ }, _) when kernel ->
        (* expression-position cons only: matching [x :: tl] in a pattern
           destructures and allocates nothing *)
        add R9 e.pexp_loc
          "list construction in a query-kernel module; accumulate into \
           Kwsc_util.Ibuf or report through callbacks"
    | Pexp_try (_, cases) ->
        List.iter
          (fun c ->
            match (c.pc_lhs.ppat_desc, c.pc_guard) with
            | Ppat_any, None ->
                add R6 c.pc_lhs.ppat_loc
                  "blanket 'with _ ->' swallows all exceptions; match the \
                   specific exceptions you expect"
            | _ -> ())
          cases
    | _ -> ());
    Ast_iterator.default_iterator.expr self e
  in
  let it = { Ast_iterator.default_iterator with expr = expr_iter } in
  it.structure it str;
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Entry points                                                       *)
(* ------------------------------------------------------------------ *)

let parse_with parser path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Location.init lexbuf path;
      Location.input_name := path;
      parser lexbuf)

let lint_file_raw ?(config = default_config) path =
  let vs =
    if Filename.check_suffix path ".mli" then (
      (* Interfaces carry no expressions the rules inspect; parsing them
         still catches syntax rot in rarely-rebuilt dirs. *)
      ignore (parse_with Parse.interface path);
      [])
    else
      let str = parse_with Parse.implementation path in
      lint_structure config ~file:path str
  in
  if
    Filename.check_suffix path ".ml"
    && (config.require_mli || path_in_lib path)
    && not (Sys.file_exists (Filename.chop_extension path ^ ".mli"))
  then
    { file = path; line = 1; rule = R7;
      message =
        Printf.sprintf "%s has no interface; add %s.mli" path
          (Filename.remove_extension (Filename.basename path)) }
    :: vs
  else vs

let lint_file ?(config = default_config) path =
  List.filter (fun v -> not (allowed config.allow v)) (lint_file_raw ~config path)

let lint_paths paths =
  let skip_dir name =
    String.equal name "_build"
    || String.equal name "lint_fixtures"
    || (String.length name > 0 && name.[0] = '.')
  in
  let rec walk acc path =
    if Sys.is_directory path then
      Array.fold_left
        (fun acc entry ->
          if skip_dir entry then acc
          else walk acc (Filename.concat path entry))
        acc (Sys.readdir path)
    else if
      Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
    then path :: acc
    else acc
  in
  List.fold_left walk [] paths |> List.sort_uniq String.compare
