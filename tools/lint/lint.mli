(** kwsc-lint: repo-specific static analysis over the OCaml parsetree.

    The linter parses source files with [compiler-libs] (no typing pass)
    and enforces the project's correctness rules:

    - R1: no polymorphic [compare] / comparison operators on float-bearing
      data in hot-path modules ([lib/kdtree], [lib/ptree], [lib/core],
      [lib/geom]).  Polymorphic structural comparison on floats is both
      slow (generic C loop) and wrong at the edges (nan, -0.); the repo
      standardises on [Float.compare], [Int.compare], [Point.compare_lex].
    - R2: no [Obj.magic], anywhere.
    - R3: no printing ([Printf.printf], [print_*], [Format.printf], or
      [fprintf] aimed at stdout/stderr) inside [lib/]; diagnostics belong
      in [bin/] and [bench/].  Formatter-parametric pretty-printers
      ([Format.fprintf ppf ...]) and [sprintf] are fine.
    - R4: no [List.nth] and no left-nested [(a @ b) @ c] in hot-path
      modules (accidentally-quadratic list idioms).
    - R5: no exact float equality ([=] / [<>] against float expressions);
      use [Float.equal] or an explicit tolerance.
    - R6: no blanket [try ... with _ ->]; it swallows [Out_of_memory],
      [Stack_overflow] and assertion failures alike.
    - R7: every [.ml] under [lib/] must have a matching [.mli].
    - R8: no raw multicore primitives ([Domain], [Atomic], [Mutex],
      [Condition], [Thread], [Semaphore]) inside [lib/]: all concurrency
      is routed through the [Kwsc_util.Pool] abstraction so the
      determinism contract has a single enforcement point.  The one
      sanctioned user is [lib/util/pool.ml], via the allowlist — an
      audited exception, not a weakening of the rule.
    - R9: no [Hashtbl] use and no list construction ([::], list literals)
      inside query-kernel modules — any file carrying the floating
      attribute [\[@@@kwsc.kernel\]]: flat kernels report through
      callbacks and [Kwsc_util.Ibuf], never by allocating a heap block
      per result.  Matching [x :: tl] in a pattern is destructuring and
      stays legal; [\[\]] alone allocates nothing and stays legal.
      Tagging a file also opts it into the typed allocation analysis
      (tools/analyze, rule A1), so there is no path list to keep in
      sync: the attribute is the single source of truth.
    - R10: no [Marshal], anywhere outside [test/].  Marshalled bytes are
      unversioned, unchecksummed, and tied to the exact compiler's value
      representation — everything the durable snapshot codec
      ([Kwsc_snapshot.Codec], DESIGN.md §9) exists to avoid.  The
      differential test suites may still [Marshal] in-memory structures
      to compare digests; that is the only sanctioned use.
    - R11: no [Container.unsafe_words], anywhere outside
      [lib/util/container.ml].  The packed bitmap word array is a private
      representation detail of the hybrid posting container (DESIGN.md
      §10); code that reads it directly silently breaks when the word
      width or the layout changes.  Everything else goes through the
      typed API ([mem], [iter], [inter_into], [dense_bytes]).
    - R12: no [Plan.owner_of], anywhere outside [lib/shard/].  Shard-id
      arithmetic (which shard owns an object id) is the partition
      contract of the scatter-gather router (DESIGN.md §12); a second
      copy of the owner computation outside the shard layer drifts
      silently when the policy or mixing function changes.  Callers
      route placement through the [Kwsc_shard] API instead.
    - R13: no [Atomic] inside [lib/serve/] outside [serve.ml].  The
      serving layer's snapshot-consistency contract (DESIGN.md §14) is
      that the published epoch cell in [lib/serve/serve.ml] is the
      *only* mutable shared across domains: readers pin an immutable
      epoch with one [Atomic.get], the single writer publishes with
      one [Atomic.set].  A second Atomic anywhere else in the layer is
      a second shared-state channel the protocol cannot see.  Inside
      [serve.ml] itself Atomic is sanctioned (and exempt from R8 —
      R13 owns the serving layer's concurrency discipline); the other
      multicore primitives stay banned there by R8 as usual.
    - R14: no [Unix.map_file] and no [Bigarray], anywhere outside
      [lib/snapshot/pager.ml].  The pager (DESIGN.md §15) is the single
      owner of the mmap-backed snapshot path: it maps the file, frames
      the sections, and enforces the lazy-CRC discipline (no payload
      bytes escape before the section's checksum passes).  A second
      module addressing the raw mapping could hand out unverified bytes
      or drift from the verified-bitmap bookkeeping; everything else
      consumes sections through [Pager]'s typed accessors.

    Rules that depend on types (R1, R5) are syntactic approximations:
    they fire on float literals, float-typed annotations, float intrinsic
    applications, and comparison operators passed as first-class values
    in hot-path code.  False positives are silenced via the checked-in
    allowlist ([tools/lint/allow.sexp]), never by weakening the rule. *)

type rule = R1 | R2 | R3 | R4 | R5 | R6 | R7 | R8 | R9 | R10 | R11 | R12 | R13 | R14

val all_rules : rule list

val rule_id : rule -> string
(** ["R1"] ... ["R14"]. *)

val rule_doc : rule -> string
(** One-line description used by [--rules] and violation reports. *)

type violation = {
  file : string;
  line : int;
  rule : rule;
  message : string;
}

val pp_violation : violation -> string
(** Renders as ["file:line: [R#] message"]. *)

(** One allowlist entry: a rule id, a path (matched as a path-segment
    suffix of the offending file), and an optional exact line. *)
type allow_entry = { a_rule : string; a_path : string; a_line : int option }

type config = {
  assume_hot : bool;  (** treat every input as a hot-path module (R1, R4) *)
  assume_lib : bool;  (** treat every input as [lib/] code (R3) *)
  assume_kernel : bool;  (** treat every input as a query-kernel module (R9) *)
  assume_serve : bool;  (** treat every input as serving-layer code (R13) *)
  require_mli : bool;  (** require a [.mli] beside every [.ml] (R7) *)
  allow : allow_entry list;
}

val default_config : config
(** All flags off, empty allowlist: scope is inferred from file paths. *)

val parse_allow : string -> allow_entry list
(** Parse allowlist text.  Line-based: [; comment]s stripped, then each
    non-empty line is [(RULE PATH [LINE])] — parentheses optional.
    @raise Failure on a malformed line. *)

val load_allow : string -> allow_entry list
(** [parse_allow] over a file's contents. *)

val pp_allow_entry : allow_entry -> string
(** Renders as ["(RULE PATH)"] or ["(RULE PATH LINE)"]. *)

val filter_allowed :
  allow_entry list -> violation list -> violation list * allow_entry list
(** [filter_allowed allow vs] is [(kept, used)]: the violations no allow
    entry matches, and the entries that matched at least one violation.
    Feed the full (unfiltered) violation set so stale-entry detection
    sees everything each entry could have matched. *)

val unused_allow :
  allow_entry list -> used:allow_entry list -> allow_entry list
(** The entries of the allowlist absent from [used] — stale suppressions
    whose violation no longer exists.  Report them: a stale entry is a
    rule weakening waiting for the next real violation at that path. *)

val lint_file : ?config:config -> string -> violation list
(** Lint one [.ml] (full rule set + R7) or [.mli] (syntax check only).
    Violations matching the allowlist are filtered out.  Propagates
    lexer/parser exceptions on unparseable input. *)

val lint_file_raw : ?config:config -> string -> violation list
(** [lint_file] before allowlist filtering ([config.allow] is ignored).
    Drivers that track stale allow entries lint raw and filter once,
    globally, with [filter_allowed]. *)

val lint_paths : string list -> string list
(** Expand files and directories (recursively; skips [_build], hidden
    directories and [lint_fixtures]) into the sorted list of [.ml] and
    [.mli] files to lint. *)
