(* kwsc-analyze: typed, interprocedural static analysis (tier 2).

   Where tools/lint works on the parsetree (no typing), this tier
   consumes the typedtree (.cmt files produced by dune) and checks the
   three contracts the paper's performance claims rest on:

   A1  allocation-freedom — modules tagged [@@@kwsc.kernel] must not
       allocate in hot contexts (loop bodies, recursive functions,
       callbacks): closures, boxed constructs (tuples, options, records,
       boxed floats), allocating stdlib calls, partial applications, and
       calls to local functions that allocate (propagated through the
       per-library call graph).  [@@kwsc.alloc_ok "why"] on a binding
       exempts it and requires a written justification.

   A2  domain-safety — closures passed to Pool.parallel_map /
       parallel_for / fork_join / fork_join_array / async / Batch.run
       must not reach shared mutable state: module-level mutables,
       writes to captured variables, or calls (propagated) to functions
       that mutate state reachable from a captured argument.  Modules
       hosting a parallel entry point must be tagged
       [@@@kwsc.domain_safe] so the audit surface is explicit.

   A3  unsafe-access gating — every Array/String/Bytes unsafe_get /
       unsafe_set must be dominated by a bounds guard mentioning the
       same index expression in the same function, and unsafe_words /
       unsafe_data (representation escapes) may only appear in their
       defining module; everything else needs a justified allow entry.

   Approximations are documented in DESIGN.md §11. *)

type rule = A1 | A2 | A3

type finding = {
  file : string;
  line : int;
  rule : rule;
  what : string; (* stable finding-kind tag, e.g. "closure", "captured-write" *)
  message : string;
}

val all_rules : rule list
val rule_id : rule -> string
val rule_doc : rule -> string
val pp_finding : finding -> string

(* Allowlist: same (RULE PATH [LINE]) shape as tools/lint, except every
   entry MUST carry a one-line justification after a ';' on the same
   line.  [parse_allow] raises [Failure] on an unjustified entry. *)
type allow_entry = {
  a_rule : string;
  a_path : string;
  a_line : int option;
  a_why : string;
}

val parse_allow : string -> allow_entry list
val load_allow : string -> allow_entry list
val pp_allow_entry : allow_entry -> string

(* [filter_allowed allow fs] returns the findings no entry matches,
   plus the entries that matched at least one finding (for stale-entry
   reporting). *)
val filter_allowed :
  allow_entry list -> finding list -> finding list * allow_entry list

val unused_allow : allow_entry list -> used:allow_entry list -> allow_entry list

(* [analyze_files cmts] analyzes one library: every .cmt in [cmts] joins
   the same call graph.  Findings are sorted by (file, line). *)
val analyze_files : string list -> finding list

(* [collect_cmts paths] expands files/directories into .cmt groups, one
   per containing directory (= one per library under dune's .objs
   layout).  Directories are walked recursively. *)
val collect_cmts : string list -> string list list
