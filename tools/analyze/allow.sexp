; kwsc-analyze allowlist: audited exceptions to A1/A2/A3.
; Format: (RULE PATH [LINE]) ; one-line justification (mandatory).
; Paths match by suffix; a LINE pins the entry to one finding.
; Entries matching no finding are reported as stale (and fail --strict).

; --- A1: allocation-freedom -------------------------------------------
(A1 lib/kdtree/kd_flat.ml 259) ; k-nearest epilogue materializes the k (dist, slot) result pairs the API returns: k allocations per query, not per visited node
(A1 lib/ptree/ptree_flat.ml 80) ; crossing-node descent builds the two child halfspaces; per-point work stays in the allocation-free scan_slice loop
(A1 lib/ptree/ptree_flat.ml 81) ; go allocates only at crossing nodes (line 80): O(n^(1-1/d)) nodes per query, never per point
(A1 lib/ptree/ptree_flat.ml 82) ; go allocates only at crossing nodes (line 80): O(n^(1-1/d)) nodes per query, never per point
(A1 lib/ptree/ptree_flat.ml 83) ; negated split direction for the far child is built once per crossing node, not per point

; --- A2: domain-safety ------------------------------------------------
(A2 lib/core/batch.ml 19) ; out.(i) has exactly one writer: parallel_for hands each shard [lo,hi) to one worker and shards are disjoint
(A2 lib/core/dimred.ml 254) ; out.(i) has exactly one writer: each batch index belongs to exactly one worker shard
(A2 lib/core/dimred.ml 255) ; accs.(s) is a per-shard private accumulator: shard s runs on exactly one worker
(A2 lib/kdtree/kd.ml 41) ; fork_join children blit the disjoint [lo,mid) and [mid,hi) slices of pts: no element is shared

; --- A3: unsafe-access gating -----------------------------------------
(A3 lib/snapshot/codec.ml 102) ; slice-by-8 CRC loop maintains !i + 8 <= n, so !i + j is in bounds for j in 0..7
(A3 lib/util/container.ml 389) ; Ibuf.unsafe_data spans a scratch buffer whose length this loop reads back per iteration; the span never outlives the call
(A3 lib/util/container.ml 421) ; Ibuf.unsafe_data spans a scratch buffer sized by Ibuf.reserve nw two lines above; the span never outlives the call
