; kwsc-analyze allowlist: audited exceptions to A1/A2/A3.
; Format: (RULE PATH [LINE]) ; one-line justification (mandatory).
; Paths match by suffix; a LINE pins the entry to one finding.
; Entries matching no finding are reported as stale (and fail --strict).

; --- A1: allocation-freedom -------------------------------------------
(A1 lib/kdtree/kd_flat.ml 313) ; k-nearest epilogue materializes the k (dist, slot) result pairs the API returns: k allocations per query, not per visited node
(A1 lib/ptree/ptree_flat.ml 125) ; crossing-node descent builds the two child halfspaces; per-point work stays in the allocation-free scan_slice loop
(A1 lib/ptree/ptree_flat.ml 126) ; go allocates only at crossing nodes (line 125): O(n^(1-1/d)) nodes per query, never per point
(A1 lib/ptree/ptree_flat.ml 127) ; go allocates only at crossing nodes (line 125): O(n^(1-1/d)) nodes per query, never per point
(A1 lib/ptree/ptree_flat.ml 128) ; negated split direction for the far child is built once per crossing node, not per point

; --- A2: domain-safety ------------------------------------------------
(A2 lib/core/batch.ml 19) ; out.(i) has exactly one writer: parallel_for hands each shard [lo,hi) to one worker and shards are disjoint
(A2 lib/core/dimred.ml 254) ; out.(i) has exactly one writer: each batch index belongs to exactly one worker shard
(A2 lib/core/dimred.ml 255) ; accs.(s) is a per-shard private accumulator: shard s runs on exactly one worker
(A2 lib/kdtree/kd.ml 41) ; fork_join children blit the disjoint [lo,mid) and [mid,hi) slices of pts: no element is shared

; --- A3: unsafe-access gating -----------------------------------------
(A3 lib/snapshot/codec.ml 106) ; slice-by-8 CRC loop maintains !i + 8 <= n, so !i + j is in bounds for j in 0..7
(A3 lib/snapshot/pager.ml 163) ; crc32_map's byte reader: every index is in [off, off + len), validated against the mapping size by the guard at function entry
(A3 lib/snapshot/pager.ml 179) ; crc32_map's table reader: the index is masked to [0, 255] and every slicing-by-8 table holds 256 entries
; inter_dense_dense: eight-wide word AND under `while !w + 8 <= nw` with i = !w and nw = min of both bank lengths
; probe_span_dense: the word-cursor span probe; inter_span_into's Dense arm checks hi <= length a, a.(hi-1) < universe and universe <= div_bits_magic_bound before the initial call
(A3 lib/util/container.ml 70) ; word load wi = div_bits_magic x with x < universe (Dense-arm entry check), so wi < nwords universe = length words
; probe_span_dense_wide: four-wide independent magic probes under `while !i + 4 <= hi` with j = !i, same Dense-arm entry checks
(A3 lib/util/container.ml 88) ; span load j + 0 sits under the `!i + 4 <= hi` stride guard (j = !i, hi <= length a checked at the Dense arm)
(A3 lib/util/container.ml 89) ; span load j + 1 sits under the `!i + 4 <= hi` stride guard (j = !i, hi <= length a checked at the Dense arm)
(A3 lib/util/container.ml 90) ; span load j + 2 sits under the `!i + 4 <= hi` stride guard (j = !i, hi <= length a checked at the Dense arm)
(A3 lib/util/container.ml 91) ; span load j + 3 sits under the `!i + 4 <= hi` stride guard (j = !i, hi <= length a checked at the Dense arm)
(A3 lib/util/container.ml 96) ; word load w0 = div_bits_magic x0 with x0 < universe (Dense-arm entry check), so w0 < nwords universe = length words
(A3 lib/util/container.ml 97) ; word load w1 = div_bits_magic x1 with x1 < universe (Dense-arm entry check), so w1 < nwords universe = length words
(A3 lib/util/container.ml 98) ; word load w2 = div_bits_magic x2 with x2 < universe (Dense-arm entry check), so w2 < nwords universe = length words
(A3 lib/util/container.ml 99) ; word load w3 = div_bits_magic x3 with x3 < universe (Dense-arm entry check), so w3 < nwords universe = length words
(A3 lib/util/container.ml 386) ; word load i + 0 sits under the `!w + 8 <= nw` stride guard (i = !w, nw = min length)
(A3 lib/util/container.ml 387) ; word load i + 1 sits under the `!w + 8 <= nw` stride guard (i = !w, nw = min length)
(A3 lib/util/container.ml 388) ; word load i + 2 sits under the `!w + 8 <= nw` stride guard (i = !w, nw = min length)
(A3 lib/util/container.ml 389) ; word load i + 3 sits under the `!w + 8 <= nw` stride guard (i = !w, nw = min length)
(A3 lib/util/container.ml 390) ; word load i + 4 sits under the `!w + 8 <= nw` stride guard (i = !w, nw = min length)
(A3 lib/util/container.ml 391) ; word load i + 5 sits under the `!w + 8 <= nw` stride guard (i = !w, nw = min length)
(A3 lib/util/container.ml 392) ; word load i + 6 sits under the `!w + 8 <= nw` stride guard (i = !w, nw = min length)
(A3 lib/util/container.ml 393) ; word load i + 7 sits under the `!w + 8 <= nw` stride guard (i = !w, nw = min length)
; inter_dense_card: the same eight-wide stride feeding popcounts, same `!w + 8 <= nw` guard
(A3 lib/util/container.ml 420) ; word load i + 0 sits under the `!w + 8 <= nw` stride guard (i = !w, nw = min length)
(A3 lib/util/container.ml 421) ; word load i + 1 sits under the `!w + 8 <= nw` stride guard (i = !w, nw = min length)
(A3 lib/util/container.ml 422) ; word load i + 2 sits under the `!w + 8 <= nw` stride guard (i = !w, nw = min length)
(A3 lib/util/container.ml 423) ; word load i + 3 sits under the `!w + 8 <= nw` stride guard (i = !w, nw = min length)
(A3 lib/util/container.ml 424) ; word load i + 4 sits under the `!w + 8 <= nw` stride guard (i = !w, nw = min length)
(A3 lib/util/container.ml 425) ; word load i + 5 sits under the `!w + 8 <= nw` stride guard (i = !w, nw = min length)
(A3 lib/util/container.ml 426) ; word load i + 6 sits under the `!w + 8 <= nw` stride guard (i = !w, nw = min length)
(A3 lib/util/container.ml 427) ; word load i + 7 sits under the `!w + 8 <= nw` stride guard (i = !w, nw = min length)
(A3 lib/util/container.ml 565) ; Ibuf.unsafe_data spans a scratch buffer whose length this loop reads back per iteration; the span never outlives the call
(A3 lib/util/container.ml 601) ; Ibuf.unsafe_data spans a scratch buffer sized by Ibuf.reserve nw two lines above; the span never outlives the call
; intersect_query And_words: eight-wide AND pass over the reserved scratch bank, `while !w + 8 <= nw` with i = !w; both arrays hold >= nw words (Ibuf.reserve nw / all_dense_same_universe)
(A3 lib/util/container.ml 608) ; scratch word i + 0 sits under the `!w + 8 <= nw` stride guard (i = !w)
(A3 lib/util/container.ml 609) ; scratch word i + 1 sits under the `!w + 8 <= nw` stride guard (i = !w)
(A3 lib/util/container.ml 610) ; scratch word i + 1 sits under the `!w + 8 <= nw` stride guard (i = !w)
(A3 lib/util/container.ml 611) ; scratch word i + 2 sits under the `!w + 8 <= nw` stride guard (i = !w)
(A3 lib/util/container.ml 612) ; scratch word i + 2 sits under the `!w + 8 <= nw` stride guard (i = !w)
(A3 lib/util/container.ml 613) ; scratch word i + 3 sits under the `!w + 8 <= nw` stride guard (i = !w)
(A3 lib/util/container.ml 614) ; scratch word i + 3 sits under the `!w + 8 <= nw` stride guard (i = !w)
(A3 lib/util/container.ml 615) ; scratch word i + 4 sits under the `!w + 8 <= nw` stride guard (i = !w)
(A3 lib/util/container.ml 616) ; scratch word i + 4 sits under the `!w + 8 <= nw` stride guard (i = !w)
(A3 lib/util/container.ml 617) ; scratch word i + 5 sits under the `!w + 8 <= nw` stride guard (i = !w)
(A3 lib/util/container.ml 618) ; scratch word i + 5 sits under the `!w + 8 <= nw` stride guard (i = !w)
(A3 lib/util/container.ml 619) ; scratch word i + 6 sits under the `!w + 8 <= nw` stride guard (i = !w)
(A3 lib/util/container.ml 620) ; scratch word i + 6 sits under the `!w + 8 <= nw` stride guard (i = !w)
(A3 lib/util/container.ml 621) ; scratch word i + 7 sits under the `!w + 8 <= nw` stride guard (i = !w)
(A3 lib/util/container.ml 622) ; scratch word i + 7 sits under the `!w + 8 <= nw` stride guard (i = !w)
