; kwsc-analyze allowlist: audited exceptions to A1/A2/A3.
; Format: (RULE PATH [LINE]) ; one-line justification (mandatory).
; Paths match by suffix; a LINE pins the entry to one finding.
; Entries matching no finding are reported as stale (and fail --strict).

; --- A1: allocation-freedom -------------------------------------------
(A1 lib/kdtree/kd_flat.ml 259) ; k-nearest epilogue materializes the k (dist, slot) result pairs the API returns: k allocations per query, not per visited node
(A1 lib/ptree/ptree_flat.ml 80) ; crossing-node descent builds the two child halfspaces; per-point work stays in the allocation-free scan_slice loop
(A1 lib/ptree/ptree_flat.ml 81) ; go allocates only at crossing nodes (line 80): O(n^(1-1/d)) nodes per query, never per point
(A1 lib/ptree/ptree_flat.ml 82) ; go allocates only at crossing nodes (line 80): O(n^(1-1/d)) nodes per query, never per point
(A1 lib/ptree/ptree_flat.ml 83) ; negated split direction for the far child is built once per crossing node, not per point

; --- A2: domain-safety ------------------------------------------------
(A2 lib/core/batch.ml 19) ; out.(i) has exactly one writer: parallel_for hands each shard [lo,hi) to one worker and shards are disjoint
(A2 lib/core/dimred.ml 254) ; out.(i) has exactly one writer: each batch index belongs to exactly one worker shard
(A2 lib/core/dimred.ml 255) ; accs.(s) is a per-shard private accumulator: shard s runs on exactly one worker
(A2 lib/kdtree/kd.ml 41) ; fork_join children blit the disjoint [lo,mid) and [mid,hi) slices of pts: no element is shared

; --- A3: unsafe-access gating -----------------------------------------
(A3 lib/snapshot/codec.ml 102) ; slice-by-8 CRC loop maintains !i + 8 <= n, so !i + j is in bounds for j in 0..7
; inter_span_into: eight-wide probe stride under `while !i + 8 <= hi` with j = !i, so j + 0..7 < hi <= length a
(A3 lib/util/container.ml 282) ; span load j + 0 sits under the `!i + 8 <= hi` stride guard (j = !i)
(A3 lib/util/container.ml 283) ; span load j + 1 sits under the `!i + 8 <= hi` stride guard (j = !i)
(A3 lib/util/container.ml 284) ; span load j + 2 sits under the `!i + 8 <= hi` stride guard (j = !i)
(A3 lib/util/container.ml 285) ; span load j + 3 sits under the `!i + 8 <= hi` stride guard (j = !i)
(A3 lib/util/container.ml 286) ; span load j + 4 sits under the `!i + 8 <= hi` stride guard (j = !i)
(A3 lib/util/container.ml 287) ; span load j + 5 sits under the `!i + 8 <= hi` stride guard (j = !i)
(A3 lib/util/container.ml 288) ; span load j + 6 sits under the `!i + 8 <= hi` stride guard (j = !i)
(A3 lib/util/container.ml 289) ; span load j + 7 sits under the `!i + 8 <= hi` stride guard (j = !i)
; inter_dense_dense: eight-wide word AND under `while !w + 8 <= nw` with i = !w and nw = min of both bank lengths
(A3 lib/util/container.ml 318) ; word load i + 0 sits under the `!w + 8 <= nw` stride guard (i = !w, nw = min length)
(A3 lib/util/container.ml 319) ; word load i + 1 sits under the `!w + 8 <= nw` stride guard (i = !w, nw = min length)
(A3 lib/util/container.ml 320) ; word load i + 2 sits under the `!w + 8 <= nw` stride guard (i = !w, nw = min length)
(A3 lib/util/container.ml 321) ; word load i + 3 sits under the `!w + 8 <= nw` stride guard (i = !w, nw = min length)
(A3 lib/util/container.ml 322) ; word load i + 4 sits under the `!w + 8 <= nw` stride guard (i = !w, nw = min length)
(A3 lib/util/container.ml 323) ; word load i + 5 sits under the `!w + 8 <= nw` stride guard (i = !w, nw = min length)
(A3 lib/util/container.ml 324) ; word load i + 6 sits under the `!w + 8 <= nw` stride guard (i = !w, nw = min length)
(A3 lib/util/container.ml 325) ; word load i + 7 sits under the `!w + 8 <= nw` stride guard (i = !w, nw = min length)
; inter_dense_card: the same eight-wide stride feeding popcounts, same `!w + 8 <= nw` guard
(A3 lib/util/container.ml 352) ; word load i + 0 sits under the `!w + 8 <= nw` stride guard (i = !w, nw = min length)
(A3 lib/util/container.ml 353) ; word load i + 1 sits under the `!w + 8 <= nw` stride guard (i = !w, nw = min length)
(A3 lib/util/container.ml 354) ; word load i + 2 sits under the `!w + 8 <= nw` stride guard (i = !w, nw = min length)
(A3 lib/util/container.ml 355) ; word load i + 3 sits under the `!w + 8 <= nw` stride guard (i = !w, nw = min length)
(A3 lib/util/container.ml 356) ; word load i + 4 sits under the `!w + 8 <= nw` stride guard (i = !w, nw = min length)
(A3 lib/util/container.ml 357) ; word load i + 5 sits under the `!w + 8 <= nw` stride guard (i = !w, nw = min length)
(A3 lib/util/container.ml 358) ; word load i + 6 sits under the `!w + 8 <= nw` stride guard (i = !w, nw = min length)
(A3 lib/util/container.ml 359) ; word load i + 7 sits under the `!w + 8 <= nw` stride guard (i = !w, nw = min length)
(A3 lib/util/container.ml 497) ; Ibuf.unsafe_data spans a scratch buffer whose length this loop reads back per iteration; the span never outlives the call
(A3 lib/util/container.ml 533) ; Ibuf.unsafe_data spans a scratch buffer sized by Ibuf.reserve nw two lines above; the span never outlives the call
; intersect_query And_words: eight-wide AND pass over the reserved scratch bank, `while !w + 8 <= nw` with i = !w; both arrays hold >= nw words (Ibuf.reserve nw / all_dense_same_universe)
(A3 lib/util/container.ml 540) ; scratch word i + 0 sits under the `!w + 8 <= nw` stride guard (i = !w)
(A3 lib/util/container.ml 541) ; scratch word i + 1 sits under the `!w + 8 <= nw` stride guard (i = !w)
(A3 lib/util/container.ml 542) ; scratch word i + 1 sits under the `!w + 8 <= nw` stride guard (i = !w)
(A3 lib/util/container.ml 543) ; scratch word i + 2 sits under the `!w + 8 <= nw` stride guard (i = !w)
(A3 lib/util/container.ml 544) ; scratch word i + 2 sits under the `!w + 8 <= nw` stride guard (i = !w)
(A3 lib/util/container.ml 545) ; scratch word i + 3 sits under the `!w + 8 <= nw` stride guard (i = !w)
(A3 lib/util/container.ml 546) ; scratch word i + 3 sits under the `!w + 8 <= nw` stride guard (i = !w)
(A3 lib/util/container.ml 547) ; scratch word i + 4 sits under the `!w + 8 <= nw` stride guard (i = !w)
(A3 lib/util/container.ml 548) ; scratch word i + 4 sits under the `!w + 8 <= nw` stride guard (i = !w)
(A3 lib/util/container.ml 549) ; scratch word i + 5 sits under the `!w + 8 <= nw` stride guard (i = !w)
(A3 lib/util/container.ml 550) ; scratch word i + 5 sits under the `!w + 8 <= nw` stride guard (i = !w)
(A3 lib/util/container.ml 551) ; scratch word i + 6 sits under the `!w + 8 <= nw` stride guard (i = !w)
(A3 lib/util/container.ml 552) ; scratch word i + 6 sits under the `!w + 8 <= nw` stride guard (i = !w)
(A3 lib/util/container.ml 553) ; scratch word i + 7 sits under the `!w + 8 <= nw` stride guard (i = !w)
(A3 lib/util/container.ml 554) ; scratch word i + 7 sits under the `!w + 8 <= nw` stride guard (i = !w)
