(* kwsc_analyze: command-line driver for the tier-2 analyzer.

   Usage: kwsc_analyze [options] [path ...]
   Paths may be .cmt files or directories (recursed; dune keeps cmts
   under .objs/byte, one directory per library).  With no paths, scans
   lib/ and falls back to _build/default/lib so it works both from the
   repo root and from inside a dune action.
   Exit status: 0 clean, 1 findings (or, with --strict, stale allow
   entries), 2 usage or parse errors. *)

module A = Kwsc_analyze_lib.Analyze

let usage = "kwsc_analyze [--allow FILE] [--strict] [--rules] [path ...]"

let print_rules () =
  List.iter
    (fun r -> Printf.printf "%s  %s\n" (A.rule_id r) (A.rule_doc r))
    A.all_rules;
  exit 0

let () =
  let allow_file = ref None in
  let strict = ref false in
  let rev_paths = ref [] in
  let spec =
    [ ("--allow", Arg.String (fun s -> allow_file := Some s),
       "FILE allowlist of justified exceptions (see tools/analyze/allow.sexp)");
      ("--strict", Arg.Set strict,
       " fail when the allowlist contains entries matching no finding");
      ("--rules", Arg.Unit print_rules, " list the analyses and exit") ]
  in
  Arg.parse spec (fun p -> rev_paths := p :: !rev_paths) usage;
  let paths =
    match List.rev !rev_paths with [] -> [ "lib" ] | ps -> ps
  in
  let allow =
    match !allow_file with
    | None -> []
    | Some f -> (
        try A.load_allow f
        with Sys_error msg | Failure msg ->
          Printf.eprintf "kwsc_analyze: %s\n" msg;
          exit 2)
  in
  let groups =
    match A.collect_cmts paths with
    | [] ->
        (* allow running from the repo root before/without cd'ing into
           the build tree *)
        A.collect_cmts
          (List.map (fun p -> Filename.concat "_build/default" p) paths)
    | gs -> gs
  in
  if groups = [] then begin
    Printf.eprintf
      "kwsc_analyze: no .cmt files under: %s (run `dune build` first)\n"
      (String.concat " " paths);
    exit 2
  end;
  let nfiles = List.fold_left (fun n g -> n + List.length g) 0 groups in
  let findings = List.concat_map A.analyze_files groups in
  let findings =
    List.sort
      (fun a b ->
        match String.compare a.A.file b.A.file with
        | 0 -> Int.compare a.A.line b.A.line
        | c -> c)
      findings
  in
  let kept, used = A.filter_allowed allow findings in
  let unused = A.unused_allow allow ~used in
  List.iter (fun f -> print_endline (A.pp_finding f)) kept;
  List.iter
    (fun e ->
      Printf.printf "kwsc-analyze: warning: unused allow entry %s\n"
        (A.pp_allow_entry e))
    unused;
  if kept <> [] then begin
    Printf.printf
      "kwsc-analyze: %d finding(s) in %d cmt file(s), %d librar(y/ies)\n"
      (List.length kept) nfiles (List.length groups);
    exit 1
  end
  else if !strict && unused <> [] then begin
    Printf.printf
      "kwsc-analyze: %d stale allow entr(y/ies) under --strict\n"
      (List.length unused);
    exit 1
  end
  else
    Printf.printf "kwsc-analyze: OK (%d cmt files in %d libraries, %d allowed)\n"
      nfiles (List.length groups) (List.length used)
