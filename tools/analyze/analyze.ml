(* kwsc-analyze implementation.  See analyze.mli for the contract.

   Pipeline, per library (= one directory of .cmt files):
     1. load      — read every .cmt, keep Implementation typedtrees;
     2. collect   — module attributes ([@@@kwsc.kernel],
                    [@@@kwsc.domain_safe]), top-level functions (with
                    [@@kwsc.alloc_ok] justifications), top-level
                    mutable bindings;
     3. summarize — per-function effect summaries (may-allocate,
                    mutates-param-i, touches-module-global) closed
                    under a fixpoint over the per-library call graph;
     4. analyze   — A1 / A2 / A3 traversals consulting the summaries.

   Typedtree paths are compared on their last two components after
   undoing dune's wrapped-library mangling (Kwsc_util__Ibuf -> Ibuf),
   so `U.Ibuf.push`, `Kwsc_util.Ibuf.push` and a bare `push` inside
   ibuf.ml all resolve to the same function. *)

type rule = A1 | A2 | A3

type finding = {
  file : string;
  line : int;
  rule : rule;
  what : string;
  message : string;
}

let all_rules = [ A1; A2; A3 ]
let rule_id = function A1 -> "A1" | A2 -> "A2" | A3 -> "A3"

let rule_doc = function
  | A1 ->
      "allocation-freedom: no closures, boxed constructs, allocating calls or \
       partial applications in hot contexts of [@@@kwsc.kernel] modules"
  | A2 ->
      "domain-safety: closures passed to Pool.parallel_* / fork_join* / async \
       / Batch.run must not reach shared mutable state; host modules must be \
       tagged [@@@kwsc.domain_safe]"
  | A3 ->
      "unsafe-access gating: unsafe_get/unsafe_set dominated by a bounds \
       guard on the same index expression; unsafe_words/unsafe_data stay in \
       their defining module"

let pp_finding f =
  Printf.sprintf "%s:%d: [%s:%s] %s" f.file f.line (rule_id f.rule) f.what
    f.message

(* ------------------------------------------------------------------ *)
(* Allowlist                                                           *)
(* ------------------------------------------------------------------ *)

type allow_entry = {
  a_rule : string;
  a_path : string;
  a_line : int option;
  a_why : string;
}

let pp_allow_entry e =
  Printf.sprintf "(%s %s%s) ; %s" e.a_rule e.a_path
    (match e.a_line with None -> "" | Some l -> " " ^ string_of_int l)
    e.a_why

(* Same surface syntax as tools/lint allow.sexp, with one extra rule: a
   ';' comment on an entry line is the entry's justification and is
   mandatory.  Comment-only lines remain plain comments. *)
let parse_allow text =
  let entries = ref [] in
  List.iteri
    (fun lineno raw ->
      let body, why =
        match String.index_opt raw ';' with
        | None -> (raw, "")
        | Some i ->
            ( String.sub raw 0 i,
              String.trim (String.sub raw (i + 1) (String.length raw - i - 1))
            )
      in
      let body = String.trim body in
      if body <> "" then begin
        let toks =
          String.split_on_char ' '
            (String.map (function '(' | ')' | '\t' -> ' ' | c -> c) body)
          |> List.filter (fun s -> s <> "")
        in
        let entry =
          match toks with
          | [ r; p ] -> { a_rule = r; a_path = p; a_line = None; a_why = why }
          | [ r; p; l ] -> (
              match int_of_string_opt l with
              | Some n when n > 0 ->
                  { a_rule = r; a_path = p; a_line = Some n; a_why = why }
              | _ ->
                  failwith
                    (Printf.sprintf "allow line %d: bad line number %S"
                       (lineno + 1) l))
          | _ ->
              failwith
                (Printf.sprintf "allow line %d: expected (RULE PATH [LINE])"
                   (lineno + 1))
        in
        if not (List.mem entry.a_rule [ "A1"; "A2"; "A3" ]) then
          failwith
            (Printf.sprintf "allow line %d: unknown rule %S" (lineno + 1)
               entry.a_rule);
        if entry.a_why = "" then
          failwith
            (Printf.sprintf
               "allow line %d: entry (%s %s) has no justification — append \
                '; why this is safe'"
               (lineno + 1) entry.a_rule entry.a_path);
        entries := entry :: !entries
      end)
    (String.split_on_char '\n' text);
  List.rev !entries

let load_allow path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  parse_allow s

(* Suffix path matching, as in tools/lint: an entry for ibuf.ml matches
   lib/util/ibuf.ml; so does one for util/ibuf.ml. *)
let split_path p =
  String.split_on_char '/' (String.map (function '\\' -> '/' | c -> c) p)

let suffix_match ~pat ~path =
  let ps = List.rev (split_path pat) and fs = List.rev (split_path path) in
  let rec go = function
    | [], _ -> true
    | _, [] -> false
    | p :: ps', f :: fs' -> p = f && go (ps', fs')
  in
  go (ps, fs)

let entry_matches e f =
  e.a_rule = rule_id f.rule
  && suffix_match ~pat:e.a_path ~path:f.file
  && match e.a_line with None -> true | Some l -> l = f.line

let filter_allowed allow fs =
  let used = Hashtbl.create 8 in
  let kept =
    List.filter
      (fun f ->
        match List.find_opt (fun e -> entry_matches e f) allow with
        | Some e ->
            Hashtbl.replace used (pp_allow_entry e) ();
            false
        | None -> true)
      fs
  in
  (kept, List.filter (fun e -> Hashtbl.mem used (pp_allow_entry e)) allow)

let unused_allow allow ~used =
  List.filter (fun e -> not (List.exists (fun u -> u = e) used)) allow

(* ------------------------------------------------------------------ *)
(* Typedtree plumbing                                                  *)
(* ------------------------------------------------------------------ *)

open Typedtree
module SMap = Map.Make (String)
module SSet = Set.Make (String)

(* Strip dune's wrapped-library mangling: Kwsc_util__Ibuf -> Ibuf. *)
let demangle s =
  let n = String.length s in
  let rec find_last i acc =
    if i + 1 >= n then acc
    else if s.[i] = '_' && s.[i + 1] = '_' then find_last (i + 2) (Some (i + 2))
    else find_last (i + 1) acc
  in
  match find_last 0 None with
  | Some i when i < n -> String.sub s i (n - i)
  | _ -> s

(* Path components with mangling removed and Stdlib dropped. *)
let path_parts p =
  let parts = List.map demangle (String.split_on_char '.' (Path.name p)) in
  match parts with "Stdlib" :: (_ :: _ as rest) -> rest | _ -> parts

(* (penultimate, last) of a path; bare idents give (None, name). *)
let last2 parts =
  match List.rev parts with
  | [] -> (None, "")
  | [ x ] -> (None, x)
  | x :: y :: _ -> (Some y, x)

let loc_line (loc : Location.t) = loc.loc_start.pos_lnum

(* Operators whose qualification we ignore entirely. *)
let bare_ops =
  SSet.of_list
    [ ":="; "!"; "@"; "^"; "ref"; "incr"; "decr"; "raise"; "raise_notrace";
      "invalid_arg"; "failwith" ]

let norm_last2 p =
  let m, f = last2 (path_parts p) in
  if SSet.mem f bare_ops then (None, f) else (m, f)

(* Allocating stdlib entry points.  `ref` is deliberately absent: local
   int-ref accumulators are idiomatic in the kernels and the lint tier
   already polices data-structure choice (documented in DESIGN.md §11). *)
let alloc_calls =
  [ ("Array",
     [ "make"; "init"; "create_float"; "make_matrix"; "append"; "concat";
       "sub"; "copy"; "of_list"; "to_list"; "map"; "mapi"; "map2"; "split";
       "combine"; "of_seq"; "to_seq" ]);
    ("List",
     [ "init"; "map"; "mapi"; "map2"; "append"; "concat"; "flatten"; "rev";
       "rev_append"; "rev_map"; "filter"; "filter_map"; "filteri"; "sort";
       "stable_sort"; "fast_sort"; "sort_uniq"; "merge"; "of_seq"; "to_seq";
       "cons"; "split"; "combine" ]);
    ("String",
     [ "make"; "init"; "sub"; "concat"; "map"; "mapi"; "cat"; "of_bytes";
       "to_bytes"; "split_on_char"; "uppercase_ascii"; "lowercase_ascii";
       "trim"; "escaped" ]);
    ("Bytes",
     [ "make"; "init"; "create"; "sub"; "copy"; "extend"; "concat"; "cat";
       "of_string"; "to_string" ]);
    ("Buffer", [ "create"; "contents"; "to_bytes"; "sub" ]);
    ("Hashtbl", [ "create"; "copy"; "fold"; "to_seq"; "of_seq" ]);
    ("Queue", [ "create" ]);
    ("Stack", [ "create" ]);
    ("Printf", [ "sprintf" ]);
    ("Format", [ "asprintf" ]) ]

let is_alloc_call (m, f) =
  (match m with
  | Some m -> List.exists (fun (m', fs) -> m = m' && List.mem f fs) alloc_calls
  | None -> false)
  || (m = None && (f = "@" || f = "^"))

(* Calls that project (part of) their first argument, used when chasing
   the root of an lvalue. *)
let projects_arg0 = function
  | Some ("Array" | "Bytes" | "String"), ("get" | "unsafe_get") -> true
  | None, "!" -> true
  | _ -> false

(* Mutating stdlib entry points: positional (Nolabel) argument indices
   the call mutates.  Ibuf is kwsc_util's scratch buffer; listing it
   here keeps cross-library A2 checks honest even where the summary is
   out of reach. *)
let known_mutators =
  [ ((Some "Array", "set"), [ 0 ]); ((Some "Array", "unsafe_set"), [ 0 ]);
    ((Some "Array", "fill"), [ 0 ]); ((Some "Array", "blit"), [ 2 ]);
    ((Some "Array", "sort"), [ 1 ]); ((Some "Array", "stable_sort"), [ 1 ]);
    ((Some "Array", "fast_sort"), [ 1 ]);
    ((Some "Bytes", "set"), [ 0 ]); ((Some "Bytes", "unsafe_set"), [ 0 ]);
    ((Some "Bytes", "fill"), [ 0 ]); ((Some "Bytes", "blit"), [ 2 ]);
    ((Some "Bytes", "blit_string"), [ 2 ]);
    ((Some "Hashtbl", "add"), [ 0 ]); ((Some "Hashtbl", "replace"), [ 0 ]);
    ((Some "Hashtbl", "remove"), [ 0 ]); ((Some "Hashtbl", "reset"), [ 0 ]);
    ((Some "Hashtbl", "clear"), [ 0 ]);
    ((Some "Hashtbl", "filter_map_inplace"), [ 1 ]);
    ((Some "Buffer", "add_char"), [ 0 ]);
    ((Some "Buffer", "add_string"), [ 0 ]);
    ((Some "Buffer", "add_bytes"), [ 0 ]); ((Some "Buffer", "clear"), [ 0 ]);
    ((Some "Buffer", "reset"), [ 0 ]);
    ((Some "Queue", "push"), [ 1 ]); ((Some "Queue", "add"), [ 1 ]);
    ((Some "Queue", "pop"), [ 0 ]); ((Some "Queue", "clear"), [ 0 ]);
    ((Some "Stack", "push"), [ 1 ]); ((Some "Stack", "pop"), [ 0 ]);
    ((Some "Ibuf", "push"), [ 0 ]); ((Some "Ibuf", "clear"), [ 0 ]);
    ((Some "Ibuf", "reserve"), [ 0 ]); ((Some "Ibuf", "swap"), [ 0; 1 ]);
    ((None, ":="), [ 0 ]); ((None, "incr"), [ 0 ]); ((None, "decr"), [ 0 ]) ]

let known_mutator key = List.assoc_opt key known_mutators

(* Parallel entry points whose closure arguments run on other domains.
   Matched on the last two path components, so `U.Pool.parallel_map`,
   `Kwsc_util.Pool.parallel_map` and a fixture-local `Pool` all count.
   pool.ml itself calls these as bare idents and so self-exempts: it is
   the one module allowed to own synchronization (lint R8). *)
let parallel_entry = function
  | ( Some "Pool",
      ( "parallel_map" | "parallel_for" | "parallel_for_reduce" | "fork_join"
      | "fork_join_array" | "async" | "run" ) ) ->
      true
  | Some "Batch", "run" -> true
  | _ -> false

let is_float_ty (e : expression) =
  match Types.get_desc e.exp_type with
  | Types.Tconstr (p, [], _) -> Path.same p Predef.path_float
  | _ -> false

let is_exn_construct (e : expression) =
  match Types.get_desc e.exp_type with
  | Types.Tconstr (p, _, _) -> Path.same p Predef.path_exn
  | _ -> false

let returns_arrow (e : expression) =
  let ty = try Ctype.expand_head e.exp_env e.exp_type with _ -> e.exp_type in
  match Types.get_desc ty with Types.Tarrow _ -> true | _ -> false

(* Bound variable names of a pattern (value or computation). *)
let rec pat_names : type k. k general_pattern -> string list =
 fun p ->
  match p.pat_desc with
  | Tpat_var (_, s) -> [ s.txt ]
  | Tpat_alias (q, _, s) -> s.txt :: pat_names q
  | Tpat_tuple ps -> List.concat_map pat_names ps
  | Tpat_construct (_, _, ps, _) -> List.concat_map pat_names ps
  | Tpat_array ps -> List.concat_map pat_names ps
  | Tpat_record (fs, _) -> List.concat_map (fun (_, _, q) -> pat_names q) fs
  | Tpat_variant (_, Some q, _) -> pat_names q
  | Tpat_or (a, b, _) -> pat_names a @ pat_names b
  | Tpat_lazy q -> pat_names q
  | Tpat_value v -> pat_names (v :> value general_pattern)
  | Tpat_exception q -> pat_names q
  | _ -> []

let is_lambda (e : expression) =
  match e.exp_desc with Texp_function _ -> true | _ -> false

(* Positional (Nolabel) arguments of an application, in order. *)
let pos_args args =
  List.filter_map
    (function Asttypes.Nolabel, Some a -> Some a | _ -> None)
    args

(* Generic child traversal via Tast_iterator: visit every sub-expression
   of [e] with [k]. *)
let iter_children k e =
  let it =
    { Tast_iterator.default_iterator with expr = (fun _ c -> k c) }
  in
  Tast_iterator.default_iterator.expr it e

(* ------------------------------------------------------------------ *)
(* Module model                                                        *)
(* ------------------------------------------------------------------ *)

type func = {
  f_name : string;
  f_loc : Location.t;
  f_params : string list; (* positional parameter names, in order *)
  f_param_all : (Asttypes.arg_label * string) list;
  f_body : expression; (* after stripping the single-case lambda spine *)
  f_rec : bool;
  f_alloc_ok : string option; (* Some justification, possibly "" *)
  mutable s_alloc : bool;
  mutable s_mut : int; (* bitmask over positional params *)
  mutable s_global : bool;
}

type modinfo = {
  m_name : string;
  m_file : string;
  m_str : structure;
  mutable m_kernel : bool;
  mutable m_domain_safe : bool;
  m_funcs : (string, func) Hashtbl.t;
  m_globals : (string, Location.t) Hashtbl.t;
}

type lib = { mods : (string, modinfo) Hashtbl.t }

let attr_name (a : Parsetree.attribute) = a.attr_name.txt

let attr_string_payload (a : Parsetree.attribute) =
  match a.attr_payload with
  | Parsetree.PStr
      [ { pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _ } ] ->
      Some s
  | _ -> None

let rec strip_params e =
  match e.exp_desc with
  | Texp_function { cases = [ { c_lhs; c_guard = None; c_rhs } ]; arg_label; _ }
    ->
      let name =
        match c_lhs.pat_desc with
        | Tpat_var (_, s) -> s.txt
        | Tpat_alias (_, _, s) -> s.txt
        | _ -> "_"
      in
      let ps, body = strip_params c_rhs in
      ((arg_label, name) :: ps, body)
  | _ -> ([], e)

(* Does a top-level binding's RHS build a mutable value?  Used to
   collect the module-level mutable state A2 polices.  Atomic.make is
   deliberately excluded: atomics are the sanctioned synchronization. *)
let rec is_mutable_alloc (e : expression) =
  match e.exp_desc with
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) -> (
      match norm_last2 p with
      | None, "ref" -> true
      | ( Some
            ("Hashtbl" | "Queue" | "Stack" | "Buffer" | "Bytes" | "Ibuf"
            | "Isect_cache"),
          "create" ) ->
          true
      | Some "Array", ("make" | "init" | "create_float" | "make_matrix") ->
          true
      | _ -> false)
  | Texp_array (_ :: _) -> true
  | Texp_record { fields; _ } ->
      Array.exists
        (fun (ld, _) -> ld.Types.lbl_mut = Asttypes.Mutable)
        fields
  | Texp_let (_, _, body) | Texp_sequence (_, body) -> is_mutable_alloc body
  | _ -> false

let collect_module name file str =
  let m =
    { m_name = name; m_file = file; m_str = str; m_kernel = false;
      m_domain_safe = false; m_funcs = Hashtbl.create 16;
      m_globals = Hashtbl.create 4 }
  in
  List.iter
    (fun item ->
      match item.str_desc with
      | Tstr_attribute a -> (
          match attr_name a with
          | "kwsc.kernel" -> m.m_kernel <- true
          | "kwsc.domain_safe" -> m.m_domain_safe <- true
          | _ -> ())
      | Tstr_value (rf, vbs) ->
          List.iter
            (fun vb ->
              match vb.vb_pat.pat_desc with
              | Tpat_var (_, s) ->
                  let params, body = strip_params vb.vb_expr in
                  let is_fn = params <> [] || is_lambda body in
                  if is_fn then
                    let alloc_ok =
                      List.find_map
                        (fun a ->
                          if attr_name a = "kwsc.alloc_ok" then
                            Some
                              (Option.value ~default:""
                                 (attr_string_payload a))
                          else None)
                        vb.vb_attributes
                    in
                    Hashtbl.replace m.m_funcs s.txt
                      { f_name = s.txt; f_loc = vb.vb_loc;
                        f_params =
                          List.filter_map
                            (function
                              | Asttypes.Nolabel, n -> Some n | _ -> None)
                            params;
                        f_param_all = params; f_body = body;
                        f_rec = (rf = Asttypes.Recursive);
                        f_alloc_ok = alloc_ok; s_alloc = false; s_mut = 0;
                        s_global = false }
                  else if is_mutable_alloc vb.vb_expr then
                    Hashtbl.replace m.m_globals s.txt vb.vb_loc
              | _ -> ())
            vbs
      | _ -> ())
    str.str_items;
  m

let add_local_lambdas locals vbs =
  List.fold_left
    (fun acc vb ->
      match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
      | Tpat_var (_, s), Texp_function _ ->
          SMap.add s.txt (vb.vb_expr, vb.vb_loc) acc
      | _ -> acc)
    locals vbs

(* ------------------------------------------------------------------ *)
(* Roots: where does an lvalue or argument ultimately live?            *)
(* ------------------------------------------------------------------ *)

type root =
  | Rparam of int (* reachable from positional parameter i *)
  | Rlocal (* fresh or function-local *)
  | Rglobal of string * string (* module-level mutable binding *)
  | Rref of root (* a ref cell whose payload has this root *)
  | Rcarrier of root list (* callback parameter: fed from these roots *)

let resolve_global lib (m : modinfo) parts =
  match last2 parts with
  | None, x when Hashtbl.mem m.m_globals x -> Some (m.m_name, x)
  | Some mq, x -> (
      match Hashtbl.find_opt lib.mods mq with
      | Some m' when Hashtbl.mem m'.m_globals x -> Some (m'.m_name, x)
      | _ -> None)
  | _ -> None

let resolve_func lib (m : modinfo) parts =
  match last2 parts with
  | None, x -> Hashtbl.find_opt m.m_funcs x
  | Some mq, x -> (
      match Hashtbl.find_opt lib.mods mq with
      | Some m' -> Hashtbl.find_opt m'.m_funcs x
      | None -> None)

let rec root_of lib m env (e : expression) : root =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> (
      let parts = path_parts p in
      match parts with
      | [ x ] -> (
          match SMap.find_opt x env with
          | Some r -> r
          | None -> (
              match resolve_global lib m parts with
              | Some (gm, gx) -> Rglobal (gm, gx)
              | None -> Rlocal (* top-level function or immutable value *)))
      | _ -> (
          match resolve_global lib m parts with
          | Some (gm, gx) -> Rglobal (gm, gx)
          | None -> Rlocal))
  | Texp_field (b, _, _) -> root_of lib m env b
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
      let key = norm_last2 p in
      let pos = pos_args args in
      if projects_arg0 key then
        match pos with
        | a :: _ -> (
            match root_of lib m env a with Rref r -> r | r -> r)
        | [] -> Rlocal
      else if key = (None, "ref") then
        match pos with a :: _ -> Rref (root_of lib m env a) | [] -> Rlocal
      else Rlocal)
  | Texp_ifthenelse (_, t, _) -> root_of lib m env t
  | Texp_let (_, _, body) | Texp_sequence (_, body) -> root_of lib m env body
  | _ -> Rlocal

(* The head identifier of an lvalue chain, for the A2 capture check. *)
let rec head_ident (e : expression) : string option =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> (
      match path_parts p with [ x ] -> Some x | _ -> None)
  | Texp_field (b, _, _) -> head_ident b
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
    when projects_arg0 (norm_last2 p) -> (
      match pos_args args with a :: _ -> head_ident a | [] -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Pass 1: per-function effect summaries + call-graph fixpoint         *)
(* ------------------------------------------------------------------ *)

type edge = { e_callee : func; e_args : (int * root) list }

let record_mut f = function
  | Rparam i when i < 30 -> f.s_mut <- f.s_mut lor (1 lsl i)
  | Rglobal _ -> f.s_global <- true
  | Rparam _ | Rref _ | Rlocal | Rcarrier _ -> ()

let rec record_mut_root f = function
  | Rcarrier rs -> List.iter (record_mut_root f) rs
  | r -> record_mut f r

let bind_names env r pat =
  List.fold_left (fun e n -> SMap.add n r e) env (pat_names pat)

(* One traversal of a function body collecting direct effects and call
   edges.  Lambda bodies are part of the tree, so effects inside local
   closures accrue to the enclosing function — which is exactly the
   summary a caller needs. *)
let collect_effects lib m (f : func) : edge list =
  let edges = ref [] in
  let rec go env (e : expression) =
    match e.exp_desc with
    | Texp_function { cases; _ } ->
        f.s_alloc <- true;
        List.iter
          (fun c ->
            let env = bind_names env Rlocal c.c_lhs in
            Option.iter (go env) c.c_guard;
            go env c.c_rhs)
          cases
    | Texp_tuple _ | Texp_record _ | Texp_array (_ :: _)
    | Texp_variant (_, Some _) ->
        f.s_alloc <- true;
        iter_children (go env) e
    | Texp_construct (_, _, _ :: _) when not (is_exn_construct e) ->
        f.s_alloc <- true;
        iter_children (go env) e
    | Texp_setfield (obj, _, _, v) ->
        record_mut_root f (root_of lib m env obj);
        go env obj;
        go env v
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) ->
        let key = norm_last2 p in
        let pos = pos_args args in
        if is_alloc_call key then f.s_alloc <- true;
        (match known_mutator key with
        | Some idxs ->
            List.iter
              (fun i ->
                match List.nth_opt pos i with
                | Some a -> record_mut_root f (root_of lib m env a)
                | None -> ())
              idxs
        | None -> ());
        (match resolve_func lib m (path_parts p) with
        | Some callee when callee != f ->
            let rec map_args pidx = function
              | [] -> []
              | (Asttypes.Nolabel, Some a) :: rest ->
                  (pidx, root_of lib m env a) :: map_args (pidx + 1) rest
              | _ :: rest -> map_args pidx rest
            in
            edges := { e_callee = callee; e_args = map_args 0 args } :: !edges
        | _ -> ());
        (* Callbacks: bind the lambda's params to the roots of the
           other arguments, so `Array.iter (fun e -> e.x <- 0) t.arr`
           attributes the write to t. *)
        let other_roots =
          List.filter_map
            (fun (_, a) ->
              match a with
              | Some a when not (is_lambda a) -> Some (root_of lib m env a)
              | _ -> None)
            args
        in
        List.iter
          (fun (_, a) ->
            match a with
            | Some a when is_lambda a ->
                go_lambda env (Rcarrier other_roots) a
            | Some a -> go env a
            | None -> ())
          args
    | Texp_let (rf, vbs, body) ->
        let env' =
          List.fold_left
            (fun acc vb ->
              match vb.vb_pat.pat_desc with
              | Tpat_var (_, s) ->
                  SMap.add s.txt
                    (if rf = Asttypes.Recursive then Rlocal
                     else root_of lib m env vb.vb_expr)
                    acc
              | _ -> bind_names acc Rlocal vb.vb_pat)
            env vbs
        in
        List.iter
          (fun vb ->
            go (if rf = Asttypes.Recursive then env' else env) vb.vb_expr)
          vbs;
        go env' body
    | Texp_match (scrut, cases, _) ->
        go env scrut;
        let sroot = root_of lib m env scrut in
        List.iter
          (fun c ->
            let env = bind_names env sroot c.c_lhs in
            Option.iter (go env) c.c_guard;
            go env c.c_rhs)
          cases
    | Texp_for (id, _, lo, hi, _, body) ->
        go env lo;
        go env hi;
        go (SMap.add (Ident.name id) Rlocal env) body
    | _ -> iter_children (go env) e
  and go_lambda env carrier (e : expression) =
    (* a lambda is still an allocation for the enclosing function *)
    f.s_alloc <- true;
    match e.exp_desc with
    | Texp_function { cases; _ } ->
        List.iter
          (fun c ->
            let env = bind_names env carrier c.c_lhs in
            Option.iter (go env) c.c_guard;
            go_lambda env carrier c.c_rhs)
          cases
    | _ -> go env e
  in
  let env =
    fst
      (List.fold_left
         (fun (acc, i) (lbl, n) ->
           match lbl with
           | Asttypes.Nolabel -> (SMap.add n (Rparam i) acc, i + 1)
           | _ -> (SMap.add n Rlocal acc, i))
         (SMap.empty, 0) f.f_param_all)
  in
  let entry env body =
    match body.exp_desc with
    | Texp_function { cases; _ } ->
        (* trailing `function ...` match: one more positional param *)
        let extra = Rparam (List.length f.f_params) in
        List.iter
          (fun c ->
            let env = bind_names env extra c.c_lhs in
            Option.iter (go env) c.c_guard;
            go env c.c_rhs)
          cases
    | _ -> go env body
  in
  (match f.f_alloc_ok with
  | None -> entry env f.f_body
  | Some _ ->
      (* audited: trust the justification for allocation, but still
         collect mutation effects *)
      entry env f.f_body;
      f.s_alloc <- false);
  !edges

let fixpoint lib =
  let all = ref [] in
  Hashtbl.iter
    (fun _ m ->
      Hashtbl.iter
        (fun _ f -> all := (f, collect_effects lib m f) :: !all)
        m.m_funcs)
    lib.mods;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (f, edges) ->
        List.iter
          (fun { e_callee = g; e_args } ->
            if g.s_alloc && g.f_alloc_ok = None && not f.s_alloc then begin
              f.s_alloc <- true;
              changed := true
            end;
            if g.s_global && not f.s_global then begin
              f.s_global <- true;
              changed := true
            end;
            List.iter
              (fun (i, r) ->
                if g.s_mut land (1 lsl i) <> 0 then begin
                  let before = (f.s_mut, f.s_global) in
                  record_mut_root f r;
                  if (f.s_mut, f.s_global) <> before then changed := true
                end)
              e_args)
          edges)
      !all
  done

(* ------------------------------------------------------------------ *)
(* A1: allocation freedom in [@@@kwsc.kernel] modules                  *)
(* ------------------------------------------------------------------ *)

(* Hot contexts: for/while bodies, bodies of recursive functions, and
   bodies of lambdas passed as arguments (callbacks run per element).
   Local let-bound lambdas are summarized on demand so a hot call to an
   allocating helper is flagged at the call site. *)
let a1_scan lib (m : modinfo) ~push =
  let finding line what message =
    push { file = m.m_file; line; rule = A1; what; message }
  in
  let seen = Hashtbl.create 32 in
  let once line what message =
    if not (Hashtbl.mem seen (line, what)) then begin
      Hashtbl.replace seen (line, what) ();
      finding line what message
    end
  in
  let local_allocs : (string, bool) Hashtbl.t = Hashtbl.create 16 in
  let lkey name (loc : Location.t) =
    Printf.sprintf "%s@%d:%d" name loc.loc_start.pos_lnum
      loc.loc_start.pos_cnum
  in
  (* Does calling this function allocate?  locals maps let-bound lambda
     names to their definitions. *)
  let rec call_allocates locals visited p =
    match path_parts p with
    | [ x ] -> (
        match SMap.find_opt x locals with
        | Some (lam, loc) -> (
            let key = lkey x loc in
            match Hashtbl.find_opt local_allocs key with
            | Some b -> Some b
            | None ->
                if SSet.mem key visited then Some false
                else begin
                  let _, body = strip_params lam in
                  let b =
                    expr_allocates locals (SSet.add key visited) body
                  in
                  Hashtbl.replace local_allocs key b;
                  Some b
                end)
        | None -> (
            match resolve_func lib m [ x ] with
            | Some g -> Some (g.s_alloc && g.f_alloc_ok = None)
            | None -> None))
    | parts -> (
        match resolve_func lib m parts with
        | Some g -> Some (g.s_alloc && g.f_alloc_ok = None)
        | None -> None)
  and expr_allocates locals visited e =
    let found = ref false in
    let rec go locals (e : expression) =
      if !found then ()
      else
        match e.exp_desc with
        | Texp_function _ -> found := true
        | Texp_tuple _ | Texp_record _ | Texp_array (_ :: _)
        | Texp_variant (_, Some _) ->
            found := true
        | Texp_construct (_, _, _ :: _) when not (is_exn_construct e) ->
            found := true
        | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) ->
            if is_alloc_call (norm_last2 p) then found := true
            else begin
              (match call_allocates locals visited p with
              | Some true -> found := true
              | _ -> ());
              List.iter (fun (_, a) -> Option.iter (go locals) a) args
            end
        | Texp_let (_, vbs, body) ->
            let locals' = add_local_lambdas locals vbs in
            List.iter (fun vb -> go locals' vb.vb_expr) vbs;
            go locals' body
        | _ -> iter_children (go locals) e
    in
    go locals e;
    !found
  in
  let callee_name p =
    match last2 (path_parts p) with
    | Some mo, fo -> mo ^ "." ^ fo
    | None, fo -> fo
  in
  let rec walk locals hot (e : expression) =
    match e.exp_desc with
    | Texp_function { cases; _ } ->
        if hot then
          once (loc_line e.exp_loc) "closure"
            "closure allocated in a hot context (loop body, recursive \
             function, or callback)";
        List.iter
          (fun c ->
            Option.iter (walk locals hot) c.c_guard;
            walk locals hot c.c_rhs)
          cases
    | Texp_tuple parts when hot ->
        once (loc_line e.exp_loc) "boxed-construct"
          (if List.exists is_float_ty parts then
             "tuple allocation boxes a float in a hot context"
           else "tuple allocated in a hot context");
        List.iter (walk locals hot) parts
    | Texp_construct (lid, _, (_ :: _ as parts))
      when hot && not (is_exn_construct e) ->
        once (loc_line e.exp_loc) "boxed-construct"
          (Printf.sprintf "%s%s allocated in a hot context"
             (Longident.last lid.txt)
             (if List.exists is_float_ty parts then " (boxes a float)"
              else ""));
        List.iter (walk locals hot) parts
    | Texp_record { fields; extended_expression; _ } when hot ->
        once (loc_line e.exp_loc) "boxed-construct"
          "record allocated in a hot context";
        Option.iter (walk locals hot) extended_expression;
        Array.iter
          (fun (_, def) ->
            match def with
            | Overridden (_, ex) -> walk locals hot ex
            | Kept _ -> ())
          fields
    | Texp_array (_ :: _ as parts) when hot ->
        once (loc_line e.exp_loc) "boxed-construct"
          "array literal allocated in a hot context";
        List.iter (walk locals hot) parts
    | Texp_apply (({ exp_desc = Texp_ident (p, _, _); _ } as fn), args) ->
        if hot then begin
          if is_alloc_call (norm_last2 p) then
            once (loc_line e.exp_loc) "alloc-call"
              (Printf.sprintf "call to allocating %s in a hot context"
                 (callee_name p))
          else begin
            match call_allocates locals SSet.empty p with
            | Some true ->
                once (loc_line e.exp_loc) "allocating-call"
                  (Printf.sprintf
                     "call to %s, which allocates, in a hot context (make \
                      it allocation-free or tag it [@@kwsc.alloc_ok \
                      \"why\"])"
                     (callee_name p))
            | _ -> ()
          end;
          if returns_arrow e then
            once (loc_line e.exp_loc) "partial-application"
              "partial application allocates a closure in a hot context"
        end;
        walk locals hot fn;
        List.iter
          (fun (_, a) ->
            match a with
            | Some ({ exp_desc = Texp_function _; _ } as lam) ->
                (* callback: its body runs per element *)
                if hot then
                  once (loc_line lam.exp_loc) "closure"
                    "closure allocated in a hot context (loop body, \
                     recursive function, or callback)";
                let _, lb = strip_params lam in
                walk_fun_body locals true lb
            | Some a -> walk locals hot a
            | None -> ())
          args
    | Texp_let (rf, vbs, body) ->
        let locals' = add_local_lambdas locals vbs in
        List.iter
          (fun vb ->
            if is_lambda vb.vb_expr then begin
              if hot then
                once
                  (loc_line vb.vb_loc)
                  "closure"
                  "closure allocated in a hot context (loop body, \
                   recursive function, or callback)";
              let _, lb = strip_params vb.vb_expr in
              walk_fun_body locals'
                (hot || rf = Asttypes.Recursive)
                lb
            end
            else walk locals hot vb.vb_expr)
          vbs;
        walk locals' hot body
    | Texp_for (_, _, lo, hi, _, body) ->
        walk locals hot lo;
        walk locals hot hi;
        walk locals true body
    | Texp_while (c, body) ->
        walk locals hot c;
        walk locals true body
    | _ -> iter_children (walk locals hot) e
  and walk_fun_body locals hot (b : expression) =
    (* entry point for a function body whose own lambda spine has been
       stripped: a trailing multi-case `function` is not itself a
       per-call allocation *)
    match b.exp_desc with
    | Texp_function { cases; _ } ->
        List.iter
          (fun c ->
            Option.iter (walk locals hot) c.c_guard;
            walk locals hot c.c_rhs)
          cases
    | _ -> walk locals hot b
  in
  Hashtbl.iter
    (fun _ (f : func) ->
      match f.f_alloc_ok with
      | Some "" ->
          finding (loc_line f.f_loc) "unjustified-attribute"
            (Printf.sprintf
               "[@kwsc.alloc_ok] on %s has no justification string" f.f_name)
      | Some _ -> () (* audited: body exempt *)
      | None -> walk_fun_body SMap.empty f.f_rec f.f_body)
    m.m_funcs

(* ------------------------------------------------------------------ *)
(* A2: domain-safety of closures passed to parallel entry points       *)
(* ------------------------------------------------------------------ *)

let a2_scan lib (m : modinfo) ~push =
  let finding line what message =
    push { file = m.m_file; line; rule = A2; what; message }
  in
  let untagged_reported = ref false in
  (* Check one closure passed to a parallel entry point.  [inside] is
     the set of names bound within the closure (its params and lets);
     anything else is captured, hence shared across domains.  Calls to
     sibling let-bound lambdas defined outside the closure (e.g. a
     recursive [go] used from fork_join thunks) are expanded. *)
  let check_closure op locals0 (lam : expression) =
    let visited = Hashtbl.create 8 in
    let lkey (loc : Location.t) =
      Printf.sprintf "%d:%d" loc.loc_start.pos_lnum loc.loc_start.pos_cnum
    in
    let rec scan inside locals (e : expression) =
      match e.exp_desc with
      | Texp_function { cases; _ } ->
          List.iter
            (fun c ->
              let inside =
                List.fold_left
                  (fun s n -> SSet.add n s)
                  inside (pat_names c.c_lhs)
              in
              Option.iter (scan inside locals) c.c_guard;
              scan inside locals c.c_rhs)
            cases
      | Texp_let (_, vbs, body) ->
          let locals' = add_local_lambdas locals vbs in
          let inside' =
            List.fold_left
              (fun s vb ->
                List.fold_left
                  (fun s n -> SSet.add n s)
                  s (pat_names vb.vb_pat))
              inside vbs
          in
          List.iter (fun vb -> scan inside' locals' vb.vb_expr) vbs;
          scan inside' locals' body
      | Texp_match (scrut, cases, _) ->
          scan inside locals scrut;
          List.iter
            (fun c ->
              let inside =
                List.fold_left
                  (fun s n -> SSet.add n s)
                  inside (pat_names c.c_lhs)
              in
              Option.iter (scan inside locals) c.c_guard;
              scan inside locals c.c_rhs)
            cases
      | Texp_for (id, _, lo, hi, _, body) ->
          scan inside locals lo;
          scan inside locals hi;
          scan (SSet.add (Ident.name id) inside) locals body
      | Texp_ident (p, _, _) -> (
          let parts = path_parts p in
          let shadowed =
            match parts with [ x ] -> SSet.mem x inside | _ -> false
          in
          match resolve_global lib m parts with
          | Some (gm, gx) when not shadowed ->
              finding (loc_line e.exp_loc) "global-mutable"
                (Printf.sprintf
                   "closure passed to %s reaches module-level mutable \
                    %s.%s — unsynchronized shared state across domains"
                   op gm gx)
          | _ -> ())
      | Texp_setfield (obj, _, ld, v) ->
          (match head_ident obj with
          | Some h when not (SSet.mem h inside) ->
              finding (loc_line e.exp_loc) "captured-write"
                (Printf.sprintf
                   "closure passed to %s writes field %s of captured \
                    value %s"
                   op ld.Types.lbl_name h)
          | _ -> ());
          scan inside locals obj;
          scan inside locals v
      | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
          let parts = path_parts p in
          let key = norm_last2 p in
          let pos = pos_args args in
          (match known_mutator key with
          | Some idxs ->
              List.iter
                (fun i ->
                  match List.nth_opt pos i with
                  | Some a -> (
                      match head_ident a with
                      | Some h when not (SSet.mem h inside) ->
                          finding (loc_line e.exp_loc) "captured-write"
                            (Printf.sprintf
                               "closure passed to %s mutates captured \
                                value %s (via %s)"
                               op h
                               (match key with
                               | Some mo, fo -> mo ^ "." ^ fo
                               | None, fo -> fo))
                      | _ -> ())
                  | None -> ())
                idxs
          | None -> ());
          List.iter (fun (_, a) -> Option.iter (scan inside locals) a) args;
          match parts with
          | [ x ] when SMap.mem x locals && not (SSet.mem x inside) ->
              (* call to a sibling lambda defined outside the closure:
                 expand its body, its params count as inside *)
              let lam', loc = SMap.find x locals in
              if not (Hashtbl.mem visited (lkey loc)) then begin
                Hashtbl.replace visited (lkey loc) ();
                scan (SSet.add x inside) locals lam'
              end
          | _ -> (
              match resolve_func lib m parts with
              | Some g ->
                  if g.s_global then
                    finding (loc_line e.exp_loc) "mutating-call"
                      (Printf.sprintf
                         "closure passed to %s calls %s, which touches \
                          module-level mutable state"
                         op g.f_name);
                  List.iteri
                    (fun i a ->
                      if g.s_mut land (1 lsl i) <> 0 then
                        match head_ident a with
                        | Some h when not (SSet.mem h inside) ->
                            finding (loc_line e.exp_loc) "mutating-call"
                              (Printf.sprintf
                                 "closure passed to %s calls %s, which \
                                  mutates its argument %s — captured, \
                                  hence shared across domains"
                                 op g.f_name h)
                        | _ -> ())
                    pos
              | None -> ()))
      | _ -> iter_children (scan inside locals) e
    in
    scan SSet.empty locals0 lam
  in
  (* Nested lambdas inside a non-lambda argument of a parallel entry
     point (e.g. fork_join_array pool (Array.mapi (fun i c () -> ...))). *)
  let rec scan_nested op locals (e : expression) =
    if is_lambda e then check_closure op locals e
    else iter_children (scan_nested op locals) e
  in
  let rec walk locals (e : expression) =
    match e.exp_desc with
    | Texp_let (_, vbs, body) ->
        let locals' = add_local_lambdas locals vbs in
        List.iter (fun vb -> walk locals' vb.vb_expr) vbs;
        walk locals' body
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
      when parallel_entry (norm_last2 p) ->
        let op =
          match last2 (path_parts p) with
          | Some mo, fo -> mo ^ "." ^ fo
          | None, fo -> fo
        in
        if not m.m_domain_safe && not !untagged_reported then begin
          untagged_reported := true;
          finding (loc_line e.exp_loc) "untagged-parallel-module"
            (Printf.sprintf
               "module calls %s but is not tagged [@@@kwsc.domain_safe] — \
                audit its closures and tag it"
               op)
        end;
        List.iter
          (fun (_, a) ->
            match a with
            | Some a when is_lambda a -> check_closure op locals a
            | Some a ->
                scan_nested op locals a;
                walk locals a
            | None -> ())
          args
    | _ -> iter_children (walk locals) e
  in
  List.iter
    (fun item ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
          List.iter (fun vb -> walk SMap.empty vb.vb_expr) vbs
      | _ -> ())
    m.m_str.str_items

(* ------------------------------------------------------------------ *)
(* A3: unsafe accesses dominated by a bounds guard                     *)
(* ------------------------------------------------------------------ *)

(* Normalized printer for index expressions and guard operands; "?"
   marks sub-expressions we cannot print and never matches a fact. *)
let rec norm_expr (e : expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> String.concat "." (path_parts p)
  | Texp_constant (Asttypes.Const_int n) -> string_of_int n
  | Texp_constant (Asttypes.Const_char c) -> Printf.sprintf "%C" c
  | Texp_constant (Asttypes.Const_string (s, _, _)) -> Printf.sprintf "%S" s
  | Texp_constant (Asttypes.Const_float f) -> f
  | Texp_constant _ -> "?"
  | Texp_field (b, _, ld) -> norm_expr b ^ "." ^ ld.Types.lbl_name
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) ->
      "("
      ^ String.concat " "
          (String.concat "." (path_parts p)
          :: List.map
               (fun (_, a) ->
                 match a with Some a -> norm_expr a | None -> "_")
               args)
      ^ ")"
  | _ -> "?"

let comparison_ops = SSet.of_list [ "<"; "<="; ">"; ">="; "="; "<>" ]

(* Facts contributed by a condition: the normalized operands of every
   comparison inside it (polarity-free, both branches — documented
   approximation). *)
let ops_of_cond facts (c : expression) =
  let acc = ref facts in
  let rec go (e : expression) =
    (match e.exp_desc with
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
        match last2 (path_parts p) with
        | _, op when SSet.mem op comparison_ops -> (
            match pos_args args with
            | a :: b :: _ ->
                let na = norm_expr a and nb = norm_expr b in
                if na <> "?" then acc := SSet.add na !acc;
                if nb <> "?" then acc := SSet.add nb !acc
            | _ -> ())
        | _ -> ())
    | _ -> ());
    iter_children go e
  in
  go c;
  !acc

let rec always_raises (e : expression) =
  match e.exp_desc with
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _) -> (
      match last2 (path_parts p) with
      | _, ("raise" | "raise_notrace" | "invalid_arg" | "failwith") -> true
      | _ -> false)
  | Texp_let (_, _, b) | Texp_sequence (_, b) -> always_raises b
  | Texp_ifthenelse (_, t, Some f) -> always_raises t && always_raises f
  | _ -> false

let a3_scan (m : modinfo) ~push =
  let finding line what message =
    push { file = m.m_file; line; rule = A3; what; message }
  in
  let is_unsafe_rw fo =
    fo = "unsafe_get" || fo = "unsafe_set"
    || String.length fo > 11
       && (String.sub fo 0 11 = "unsafe_get_"
          || String.sub fo 0 11 = "unsafe_set_")
  in
  let rec scan facts (e : expression) =
    match e.exp_desc with
    | Texp_ifthenelse (c, t, eo) ->
        scan facts c;
        let facts' = ops_of_cond facts c in
        scan facts' t;
        Option.iter (scan facts') eo
    | Texp_sequence (a, b) ->
        scan facts a;
        let facts' =
          (* early-exit guard: `if bad then invalid_arg ...; rest` *)
          match a.exp_desc with
          | Texp_ifthenelse (c, t, None) when always_raises t ->
              ops_of_cond facts c
          | _ -> facts
        in
        scan facts' b
    | Texp_while (c, body) ->
        scan facts c;
        scan (ops_of_cond facts c) body
    | Texp_for (id, _, lo, hi, _, body) ->
        scan facts lo;
        scan facts hi;
        scan (SSet.add (Ident.name id) facts) body
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) ->
        let mo, fo = last2 (path_parts p) in
        (if is_unsafe_rw fo then
           match List.nth_opt (pos_args args) 1 with
           | Some idx ->
               let s = norm_expr idx in
               if not (s <> "?" && SSet.mem s facts) then
                 finding (loc_line e.exp_loc)
                   (if String.length fo >= 10 && String.sub fo 0 10 = "unsafe_set"
                    then "unguarded-unsafe-set"
                    else "unguarded-unsafe-get")
                   (Printf.sprintf
                      "%s on index %s is not dominated by a bounds guard \
                       mentioning that index in this function"
                      (match mo with Some mo -> mo ^ "." ^ fo | None -> fo)
                      (if s = "?" then "<expr>" else s))
           | None -> ()
         else if fo = "unsafe_words" || fo = "unsafe_data" then
           match mo with
           | Some dm when dm <> m.m_name ->
               finding (loc_line e.exp_loc) "representation-escape"
                 (Printf.sprintf
                    "%s.%s exposes the backing store outside its defining \
                     module — needs a justified allow entry"
                    dm fo)
           | _ -> ());
        List.iter (fun (_, a) -> Option.iter (scan facts) a) args
    | _ -> iter_children (scan facts) e
  in
  List.iter
    (fun item ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
          List.iter (fun vb -> scan SSet.empty vb.vb_expr) vbs
      | _ -> ())
    m.m_str.str_items

(* ------------------------------------------------------------------ *)
(* Loading and driving                                                 *)
(* ------------------------------------------------------------------ *)

let load_cmt path : modinfo option =
  match Cmt_format.read_cmt path with
  | { cmt_annots = Cmt_format.Implementation str; cmt_modname;
      cmt_sourcefile; _ } ->
      let file =
        Option.value cmt_sourcefile ~default:(Filename.basename path)
      in
      Some (collect_module (demangle cmt_modname) file str)
  | _ -> None
  | exception _ -> None

let analyze_files cmts =
  let lib = { mods = Hashtbl.create 16 } in
  let ms = List.filter_map load_cmt cmts in
  List.iter (fun m -> Hashtbl.replace lib.mods m.m_name m) ms;
  fixpoint lib;
  let acc = ref [] in
  let push f = acc := f :: !acc in
  List.iter
    (fun m ->
      if m.m_kernel then a1_scan lib m ~push;
      a2_scan lib m ~push;
      a3_scan m ~push)
    ms;
  List.sort_uniq compare !acc

let collect_cmts paths =
  let groups : (string, string list ref) Hashtbl.t = Hashtbl.create 8 in
  let add f =
    let d = Filename.dirname f in
    match Hashtbl.find_opt groups d with
    | Some r -> r := f :: !r
    | None -> Hashtbl.add groups d (ref [ f ])
  in
  let rec walk p =
    if Sys.is_directory p then
      Array.iter (fun e -> walk (Filename.concat p e)) (Sys.readdir p)
    else if Filename.check_suffix p ".cmt" then add p
  in
  List.iter (fun p -> if Sys.file_exists p then walk p) paths;
  Hashtbl.fold (fun _ r acc -> List.sort compare !r :: acc) groups []
  |> List.sort compare
