#!/bin/sh
# Full correctness gate: build everything, run the whole test suite
# (which includes the lint meta-tests and the KWSC_AUDIT qcheck audits),
# then lint the repository itself.  Run from the repo root; `make ci`.
#
# The suite runs twice to pin the parallel determinism contract at both
# ends: forced-sequential (KWSC_DOMAINS=1) and a 4-domain pool — and
# with the shard layer forced unsharded (KWSC_SHARDS=1) and at a
# 4-shard default, pinning the sharded-vs-unsharded equivalence
# contract at both ends too.  The slow tier (KWSC_SLOW=1) additionally
# enables the large stress instances, the 120-sequence dynamic audit
# and the parallel stress test, all under deep structural audits.
set -eux

dune build @all
KWSC_DOMAINS=1 KWSC_SHARDS=1 dune runtest --force
KWSC_DOMAINS=4 KWSC_SHARDS=4 dune runtest --force
KWSC_SLOW=1 KWSC_AUDIT=1 KWSC_DOMAINS=4 dune runtest --force
# The out-of-core read path: KWSC_OOC=1 flips every snapshot open in
# the suite to the mmap-backed pager (lazy per-section CRCs), which
# must stay green forced-sequential and at a 4-domain pool.
KWSC_OOC=1 KWSC_DOMAINS=1 dune runtest --force
KWSC_OOC=1 KWSC_DOMAINS=4 dune runtest --force
dune build @lint
dune build @analyze
# Crash-test the whole bench harness at tiny N (numbers are meaningless
# at this size; correctness of what it measures is the suite's job).
dune exec bench/main.exe -- --smoke --no-micro

# Perf-regression gate: the CMP experiment's deterministic work counters
# (container kind census, intersection output sums, planner-equivalence
# sweep totals, cache hit/miss) must stay within 10% of the committed
# reference.  Timings never gate — only exact counters are stable.
dune exec bench/main.exe -- --smoke --no-micro --only CMP --check-ref scripts/cmp_ref.txt

# Out-of-core smoke: the OOC experiment re-execs itself for the RSS
# phases and cross-checks paged-vs-eager answers and container kinds;
# numbers are meaningless at smoke N, the cross-checks still gate.
dune exec bench/main.exe -- --smoke --no-micro --only OOC

# Snapshot round-trip gate: a freshly built index and its reloaded
# snapshot must print byte-identical answers (and --stats counters) for
# the same query, and a corrupted snapshot must be *refused*, not loaded.
snapdir=$(mktemp -d)
trap 'rm -rf "$snapdir"' EXIT
kwsc="dune exec bin/main.exe --"
$kwsc generate -n 2000 -d 2 -o "$snapdir/data.csv"
KWSC_AUDIT=1 $kwsc rect -i "$snapdir/data.csv" \
  --lo 100,100 --hi 600,600 --kw 1,2 --stats > "$snapdir/cold.out"
$kwsc save -i "$snapdir/data.csv" --kind orp -k 2 -o "$snapdir/orp.snap"
KWSC_AUDIT=1 $kwsc load --index "$snapdir/orp.snap" -i "$snapdir/data.csv" \
  --lo 100,100 --hi 600,600 --kw 1,2 --stats > "$snapdir/warm.out"
diff "$snapdir/cold.out" "$snapdir/warm.out"
# truncation must fail (`! cmd` would be invisible to set -e; test the
# exit status explicitly so a wrongly-accepted snapshot fails the gate)
head -c 40 "$snapdir/orp.snap" > "$snapdir/trunc.snap"
if $kwsc load --index "$snapdir/trunc.snap" -i "$snapdir/data.csv" \
     --lo 100,100 --hi 600,600 --kw 1,2; then
  echo "truncated snapshot was accepted" >&2
  exit 1
fi
# mangled magic must fail
cp "$snapdir/orp.snap" "$snapdir/magic.snap"
printf 'XXXX' | dd of="$snapdir/magic.snap" bs=1 count=4 conv=notrunc 2>/dev/null
if $kwsc load --index "$snapdir/magic.snap" -i "$snapdir/data.csv" \
     --lo 100,100 --hi 600,600 --kw 1,2; then
  echo "bad-magic snapshot was accepted" >&2
  exit 1
fi
# mid-file bit flips: each one must either be caught (typed refusal) or,
# never, crash/accept — at least one of these offsets lands in a
# checksummed section payload, so require >= 1 refusal
size=$(wc -c < "$snapdir/orp.snap")
ok=0
for off in $((size / 4)) $((size / 2)) $((3 * size / 4)); do
  cp "$snapdir/orp.snap" "$snapdir/flip.snap"
  byte=$(dd if="$snapdir/flip.snap" bs=1 skip="$off" count=1 2>/dev/null | od -An -tu1 | tr -d ' ')
  printf "$(printf '\\%03o' $((byte ^ 1)))" \
    | dd of="$snapdir/flip.snap" bs=1 seek="$off" count=1 conv=notrunc 2>/dev/null
  if ! $kwsc load --index "$snapdir/flip.snap" -i "$snapdir/data.csv" \
       --lo 100,100 --hi 600,600 --kw 1,2 > /dev/null; then
    ok=$((ok + 1))
  fi
done
test "$ok" -ge 1

# Inverted snapshot gate: the hybrid container sections (kind tags,
# cardinalities, delta ids, run pairs, dense bitmap blob) must reload to
# the same answers with the planner on or off, and refuse corruption.
$kwsc save -i "$snapdir/data.csv" --kind inverted -o "$snapdir/inv.snap"
KWSC_AUDIT=1 $kwsc load --index "$snapdir/inv.snap" -i "$snapdir/data.csv" \
  --kw 1,2 --planner on > "$snapdir/inv_on.out"
KWSC_AUDIT=1 $kwsc load --index "$snapdir/inv.snap" -i "$snapdir/data.csv" \
  --kw 1,2 --planner off > "$snapdir/inv_off.out"
diff "$snapdir/inv_on.out" "$snapdir/inv_off.out"
# the out-of-core open (--ooc: mmap the snapshot, page containers in on
# first touch) must print byte-identical answers to the eager load
KWSC_AUDIT=1 $kwsc load --index "$snapdir/inv.snap" -i "$snapdir/data.csv" \
  --kw 1,2 --planner on --ooc > "$snapdir/inv_ooc.out"
diff "$snapdir/inv_on.out" "$snapdir/inv_ooc.out"
# truncation mid-way through the container columns must be refused
invsize=$(wc -c < "$snapdir/inv.snap")
head -c $((invsize / 2)) "$snapdir/inv.snap" > "$snapdir/inv_trunc.snap"
if $kwsc load --index "$snapdir/inv_trunc.snap" -i "$snapdir/data.csv" --kw 1,2; then
  echo "truncated inverted snapshot was accepted" >&2
  exit 1
fi
# a bit flip inside the container payload must be refused (the section
# CRC covers every byte past the header)
cp "$snapdir/inv.snap" "$snapdir/inv_flip.snap"
off=$((invsize / 2))
byte=$(dd if="$snapdir/inv_flip.snap" bs=1 skip="$off" count=1 2>/dev/null | od -An -tu1 | tr -d ' ')
printf "$(printf '\\%03o' $((byte ^ 1)))" \
  | dd of="$snapdir/inv_flip.snap" bs=1 seek="$off" count=1 conv=notrunc 2>/dev/null
if $kwsc load --index "$snapdir/inv_flip.snap" -i "$snapdir/data.csv" --kw 1,2 > /dev/null; then
  echo "bit-flipped inverted snapshot was accepted" >&2
  exit 1
fi

# Sharded snapshot gate: a 4-shard index must print byte-identical
# answers to the monolithic cold build, both freshly built (--shards)
# and through its per-shard snapshot; an unsharded snapshot must
# reshard on load (--shards against orp.snap) to the same bytes again.
# strip the --stats line before comparing against the monolithic run:
# traversal counters are per-shard sums over shard-local structures,
# only the reported ids are contract-identical
grep -v '^stats:' "$snapdir/cold.out" > "$snapdir/cold_nostats.out"
KWSC_AUDIT=1 $kwsc rect -i "$snapdir/data.csv" \
  --lo 100,100 --hi 600,600 --kw 1,2 --shards 4 > "$snapdir/shard_cold.out"
diff "$snapdir/cold_nostats.out" "$snapdir/shard_cold.out"
$kwsc save -i "$snapdir/data.csv" --kind orp -k 2 --shards 4 -o "$snapdir/orp4.snap"
KWSC_AUDIT=1 $kwsc load --index "$snapdir/orp4.snap" -i "$snapdir/data.csv" \
  --lo 100,100 --hi 600,600 --kw 1,2 > "$snapdir/shard_warm.out"
KWSC_AUDIT=1 $kwsc load --index "$snapdir/orp.snap" -i "$snapdir/data.csv" \
  --lo 100,100 --hi 600,600 --kw 1,2 --shards 4 > "$snapdir/shard_resh.out"
diff "$snapdir/shard_warm.out" "$snapdir/shard_resh.out"
diff "$snapdir/cold_nostats.out" "$snapdir/shard_warm.out"
# a bit flip inside one shard section must be refused by name
s4size=$(wc -c < "$snapdir/orp4.snap")
cp "$snapdir/orp4.snap" "$snapdir/orp4_flip.snap"
off=$((s4size / 2))
byte=$(dd if="$snapdir/orp4_flip.snap" bs=1 skip="$off" count=1 2>/dev/null | od -An -tu1 | tr -d ' ')
printf "$(printf '\\%03o' $((byte ^ 1)))" \
  | dd of="$snapdir/orp4_flip.snap" bs=1 seek="$off" count=1 conv=notrunc 2>/dev/null
if $kwsc load --index "$snapdir/orp4_flip.snap" -i "$snapdir/data.csv" \
     --lo 100,100 --hi 600,600 --kw 1,2 > /dev/null; then
  echo "bit-flipped sharded snapshot was accepted" >&2
  exit 1
fi

# Serve gate: insert -> query -> checkpoint -> kill -> restore must
# print byte-identical answers (ids, live count, watermark and work
# counters all round-trip), with the reader pool forced sequential and
# at 4 domains.  Maintenance runs before the recorded query so the
# live and restored chains are physically identical.
sed 's/^/insert /' "$snapdir/data.csv" | head -n 300 > "$snapdir/serve_cmds"
cat >> "$snapdir/serve_cmds" <<'EOF'
delete 3
delete 10
delete 11
maintain
query 100,100 600,600 1,2
checkpoint
quit
EOF
for domains in 1 4; do
  KWSC_DOMAINS=$domains $kwsc serve -k 2 -d 2 \
    --checkpoint "$snapdir/serve_$domains.snap" < "$snapdir/serve_cmds" \
    > "$snapdir/serve_live_$domains.out"
  grep '^ids=' "$snapdir/serve_live_$domains.out" > "$snapdir/serve_live_$domains.ans"
  printf 'query 100,100 600,600 1,2\nquit\n' \
    | KWSC_DOMAINS=$domains $kwsc serve --restore "$snapdir/serve_$domains.snap" \
    > "$snapdir/serve_restored_$domains.out"
  grep '^ids=' "$snapdir/serve_restored_$domains.out" > "$snapdir/serve_restored_$domains.ans"
  diff "$snapdir/serve_live_$domains.ans" "$snapdir/serve_restored_$domains.ans"
done
# the two pool sizes must agree with each other too
diff "$snapdir/serve_live_1.ans" "$snapdir/serve_live_4.ans"
# a truncated serve checkpoint must be refused, not restored
head -c 60 "$snapdir/serve_1.snap" > "$snapdir/serve_trunc.snap"
if printf 'quit\n' | $kwsc serve --restore "$snapdir/serve_trunc.snap" > /dev/null; then
  echo "truncated serve checkpoint was accepted" >&2
  exit 1
fi
