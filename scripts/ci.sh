#!/bin/sh
# Full correctness gate: build everything, run the whole test suite
# (which includes the lint meta-tests and the KWSC_AUDIT qcheck audits),
# then lint the repository itself.  Run from the repo root; `make ci`.
set -eux

dune build @all
dune runtest --force
dune build @lint
