#!/bin/sh
# Full correctness gate: build everything, run the whole test suite
# (which includes the lint meta-tests and the KWSC_AUDIT qcheck audits),
# then lint the repository itself.  Run from the repo root; `make ci`.
#
# The suite runs twice to pin the parallel determinism contract at both
# ends: forced-sequential (KWSC_DOMAINS=1) and a 4-domain pool.  The
# slow tier (KWSC_SLOW=1) additionally enables the large stress
# instances, the 120-sequence dynamic audit and the parallel stress
# test, all under deep structural audits.
set -eux

dune build @all
KWSC_DOMAINS=1 dune runtest --force
KWSC_DOMAINS=4 dune runtest --force
KWSC_SLOW=1 KWSC_AUDIT=1 KWSC_DOMAINS=4 dune runtest --force
dune build @lint
# Crash-test the whole bench harness at tiny N (numbers are meaningless
# at this size; correctness of what it measures is the suite's job).
dune exec bench/main.exe -- --smoke --no-micro
