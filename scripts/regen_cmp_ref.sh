#!/bin/sh
# Regenerate scripts/cmp_ref.txt — the deterministic work-counter
# reference the CMP perf-regression gate (scripts/ci.sh, `make
# bench-cmp`) checks against at ±10%.
#
# Run from the repo root after an *intentional* change to container
# classification, the planner's strategy choices or the intersection
# cache, and commit the result together with the change that moved the
# counters. The gate replays the experiment in --smoke mode, so the
# reference holds smoke-footprint values; timings are deliberately
# absent — only exact counters are stable enough to gate on.
set -eu

out=scripts/cmp_ref.txt
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

dune exec bench/main.exe -- --smoke --no-micro --only CMP > "$tmp"

{
  cat <<'EOF'
# Deterministic work counters from the CMP experiment in --smoke mode
# (bench/cmpbench.ml; regenerate with scripts/regen_cmp_ref.sh).
# scripts/ci.sh replays the experiment with
#   dune exec bench/main.exe -- --smoke --no-micro --only CMP --check-ref scripts/cmp_ref.txt
# and fails on more than 10% drift in any counter — a cheap guard
# against silent regressions in container classification, the planner's
# strategy choices or the intersection cache. Timings are deliberately
# absent: only exact work counters are stable enough to gate on.
EOF
  # the "work counters" block: indented "key value" lines after the
  # header line, up to the first line that is not of that shape
  awk '/work counters \(scripts\/cmp_ref.txt format\):/ { on = 1; next }
       on && NF == 2 && $2 ~ /^-?[0-9]+$/ { print $1, $2; next }
       on { exit }' "$tmp"
} > "$out"

# a regenerated reference must gate its own run cleanly
dune exec bench/main.exe -- --smoke --no-micro --only CMP --check-ref "$out" > /dev/null
echo "regenerated $out:"
cat "$out"
