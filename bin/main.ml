(* kwsc: command-line front end.

   Subcommands:
     generate    synthesize a dataset and write it to a file
     rect        ORP-KW query (Theorem 1)
     halfspace   LC-KW query (Theorem 5)
     sphere      SRP-KW query (Corollary 6)
     nn          L-infinity / L2 nearest-neighbor query (Corollaries 4, 7)
     info        index statistics (space accounting)
     save        build an index and write a durable snapshot
     load        load a snapshot (no rebuild) and query it
     serve       dynamic index request loop with epoch reads and checkpoints

   Datasets are the plain-text format of {!Kwsc_workload.Csv_io}: one object
   per line, "x1,x2|kw1;kw2;kw3". *)

open Cmdliner
open Kwsc_geom

let man_footer =
  [
    `S Manpage.s_see_also;
    `P "Lu & Tao, Indexing for Keyword Search with Structured Constraints, PODS 2023.";
  ]

(* ---- shared arguments ---------------------------------------------- *)

let input_arg =
  Arg.(
    required
    & opt (some non_dir_file) None
    & info [ "i"; "input" ] ~docv:"FILE" ~doc:"Dataset file (see kwsc generate).")

let k_arg =
  Arg.(value & opt int 2 & info [ "k" ] ~docv:"K" ~doc:"Number of query keywords the index is built for (>= 2).")

let kw_arg =
  Arg.(
    required
    & opt (some (list int)) None
    & info [ "kw"; "keywords" ] ~docv:"W1,W2,..." ~doc:"Query keywords (exactly K distinct integers).")

let floats_arg names docv doc =
  Arg.(required & opt (some (list float)) None & info names ~docv ~doc)

let load_objects path =
  let objs = Kwsc_workload.Csv_io.load path in
  if Array.length objs = 0 then failwith "dataset is empty";
  objs

(* --planner=on|off: toggle the cost-based intersection planner (and the
   materialized-intersection cache it admits to). Defaults to the
   KWSC_PLANNER environment setting; answers are identical either way —
   only the physical kernels and the work counters change. *)
let planner_arg =
  Arg.(
    value
    & opt (some (enum [ ("on", true); ("off", false) ])) None
    & info [ "planner" ] ~docv:"on|off"
        ~doc:
          "Enable or disable the cost-based intersection planner (default: the \
           KWSC_PLANNER environment variable, on when unset). Answers are \
           identical either way.")

let apply_planner = function
  | Some v -> Kwsc_util.Planner.enabled := v
  | None -> ()

(* --feedback=on|off: toggle the planner's observed-selectivity
   correction (chain pricing against the pair cache's recorded
   intersection cardinalities, DESIGN.md section 13). Defaults to the
   KWSC_PLANNER_FEEDBACK environment setting; purely physical — answers
   and work counters are identical either way. *)
let feedback_arg =
  Arg.(
    value
    & opt (some (enum [ ("on", true); ("off", false) ])) None
    & info [ "feedback" ] ~docv:"on|off"
        ~doc:
          "Enable or disable the planner's observed-selectivity feedback \
           (default: the KWSC_PLANNER_FEEDBACK environment variable, on when \
           unset). Answers and work counters are identical either way.")

let apply_feedback = function
  | Some v -> Kwsc_util.Planner.feedback_enabled := v
  | None -> ()

(* --shards=K: partition the index across K shards behind the
   scatter-gather router (lib/shard, DESIGN.md section 12). Defaults to
   the KWSC_SHARDS environment setting; answers are identical at every
   shard count — only the physical layout and the save/load parallelism
   change. *)
module Sh = Kwsc_shard.Surfaces
module SPlan = Kwsc_shard.Plan

let shards_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "shards" ] ~docv:"K"
        ~doc:
          "Partition the index into $(docv) shards behind the scatter-gather \
           router (default: the KWSC_SHARDS environment variable, 1 when \
           unset). Answers are identical at every shard count.")

let resolve_shards = function
  | Some k -> if k >= 1 then k else 1
  | None -> SPlan.env_shards ()

(* --ooc: out-of-core snapshot reads — map the file and page sections in
   lazily, CRCs verified on first touch (DESIGN.md section 15). ORs with
   the KWSC_OOC environment switch. Answers are identical either way. *)
let ooc_arg =
  Arg.(
    value & flag
    & info [ "ooc" ]
        ~doc:
          "Out-of-core: mmap the snapshot and page sections in lazily, verifying \
           each section's checksum on first touch (default: the KWSC_OOC \
           environment variable). Applies to inverted snapshots and serve \
           --restore; answers are identical either way.")

let resolve_ooc flag = flag || Kwsc_snapshot.Pager.env_ooc ()

let print_results objs ids =
  Printf.printf "%d objects:\n" (Array.length ids);
  Array.iter
    (fun id ->
      let p, doc = objs.(id) in
      Printf.printf "  #%d  %s  {%s}\n" id (Point.to_string p)
        (String.concat ";"
           (List.map string_of_int (Array.to_list (Kwsc_invindex.Doc.to_array doc)))))
    ids

let print_query_stats (st : Kwsc.Stats.query) =
  Printf.printf
    "stats: nodes=%d covered=%d crossing=%d pivot_checked=%d small_scanned=%d reported=%d\n"
    st.Kwsc.Stats.nodes_visited st.Kwsc.Stats.covered_nodes st.Kwsc.Stats.crossing_nodes
    st.Kwsc.Stats.pivot_checked st.Kwsc.Stats.small_scanned st.Kwsc.Stats.reported

(* ---- generate ------------------------------------------------------- *)

let generate n d vocab theta len_min len_max seed range out =
  let rng = Kwsc_util.Prng.create seed in
  let pts = Kwsc_workload.Gen.points_uniform ~rng ~n ~d ~range in
  let docs = Kwsc_workload.Gen.docs ~rng ~n ~vocab ~theta ~len_min ~len_max in
  let objs = Array.init n (fun i -> (pts.(i), docs.(i))) in
  Kwsc_workload.Csv_io.save out objs;
  Printf.printf "wrote %d objects (d=%d, vocab=%d, theta=%g) to %s\n" n d vocab theta out

let generate_cmd =
  let n = Arg.(value & opt int 10000 & info [ "n" ] ~doc:"Number of objects.") in
  let d = Arg.(value & opt int 2 & info [ "d" ] ~doc:"Dimensionality.") in
  let vocab = Arg.(value & opt int 100 & info [ "vocab" ] ~doc:"Vocabulary size.") in
  let theta = Arg.(value & opt float 0.9 & info [ "theta" ] ~doc:"Zipf skew (0 = uniform).") in
  let len_min = Arg.(value & opt int 1 & info [ "len-min" ] ~doc:"Min document size.") in
  let len_max = Arg.(value & opt int 6 & info [ "len-max" ] ~doc:"Max document size.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let range = Arg.(value & opt float 1000.0 & info [ "range" ] ~doc:"Coordinate range.") in
  let out =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Synthesize a Zipf-keyword dataset" ~man:man_footer)
    Term.(const generate $ n $ d $ vocab $ theta $ len_min $ len_max $ seed $ range $ out)

(* ---- rect ----------------------------------------------------------- *)

let rect input k lo hi kws stats planner feedback shards =
  apply_planner planner;
  apply_feedback feedback;
  let objs = load_objects input in
  let q = Rect.make (Array.of_list lo) (Array.of_list hi) in
  let ws = Array.of_list kws in
  let kshards = resolve_shards shards in
  let ids, st =
    if kshards > 1 then
      let t = Sh.Orp.build ~plan:(SPlan.default_policy (), kshards) k objs in
      Sh.Orp.query_stats t (q, ws)
    else
      let t = Kwsc.Orp_kw.build ~k objs in
      Kwsc.Orp_kw.query_stats t q ws
  in
  print_results objs ids;
  if stats then print_query_stats st

let stats_flag = Arg.(value & flag & info [ "stats" ] ~doc:"Print per-query instrumentation.")

let rect_cmd =
  let lo = floats_arg [ "lo" ] "X1,X2,..." "Lower corner of the query rectangle." in
  let hi = floats_arg [ "hi" ] "Y1,Y2,..." "Upper corner of the query rectangle." in
  Cmd.v
    (Cmd.info "rect" ~doc:"ORP-KW: rectangle + keywords (Theorem 1)" ~man:man_footer)
    Term.(
      const rect $ input_arg $ k_arg $ lo $ hi $ kw_arg $ stats_flag $ planner_arg $ feedback_arg
      $ shards_arg)

(* ---- halfspace ------------------------------------------------------ *)

let halfspace input k coeffs bound kws stats planner feedback =
  apply_planner planner;
  apply_feedback feedback;
  let objs = load_objects input in
  let t = Kwsc.Lc_kw.build ~k objs in
  let h = Halfspace.make (Array.of_list coeffs) bound in
  let ids, st = Kwsc.Lc_kw.query_stats t [ h ] (Array.of_list kws) in
  print_results objs ids;
  if stats then print_query_stats st

let halfspace_cmd =
  let coeffs = floats_arg [ "coeffs" ] "C1,C2,..." "Constraint coefficients." in
  let bound =
    Arg.(required & opt (some float) None & info [ "bound" ] ~docv:"B" ~doc:"Constraint bound (c . x <= B).")
  in
  Cmd.v
    (Cmd.info "halfspace" ~doc:"LC-KW: linear constraint + keywords (Theorem 5)" ~man:man_footer)
    Term.(
      const halfspace $ input_arg $ k_arg $ coeffs $ bound $ kw_arg $ stats_flag $ planner_arg
      $ feedback_arg)

(* ---- sphere --------------------------------------------------------- *)

let sphere input k center radius kws stats planner feedback =
  apply_planner planner;
  apply_feedback feedback;
  let objs = load_objects input in
  let t = Kwsc.Srp_kw.build ~k objs in
  let s = Sphere.make (Array.of_list center) radius in
  let ids, st = Kwsc.Srp_kw.query_stats t s (Array.of_list kws) in
  print_results objs ids;
  if stats then print_query_stats st

let sphere_cmd =
  let center = floats_arg [ "center" ] "X1,X2,..." "Sphere center." in
  let radius =
    Arg.(required & opt (some float) None & info [ "radius" ] ~docv:"R" ~doc:"Sphere radius.")
  in
  Cmd.v
    (Cmd.info "sphere" ~doc:"SRP-KW: sphere + keywords (Corollary 6)" ~man:man_footer)
    Term.(
      const sphere $ input_arg $ k_arg $ center $ radius $ kw_arg $ stats_flag $ planner_arg
      $ feedback_arg)

(* ---- nn ------------------------------------------------------------- *)

let nn input k metric point t' kws planner feedback =
  apply_planner planner;
  apply_feedback feedback;
  let objs = load_objects input in
  let q = Array.of_list point in
  let ws = Array.of_list kws in
  let results =
    match metric with
    | `Linf ->
        let t = Kwsc.Linf_nn_kw.build ~k objs in
        Kwsc.Linf_nn_kw.query t q ~t' ws
    | `L2 ->
        let t = Kwsc.L2_nn_kw.build ~k objs in
        Kwsc.L2_nn_kw.query t q ~t' ws
  in
  Printf.printf "%d nearest matching objects:\n" (Array.length results);
  Array.iter
    (fun (id, dist) ->
      let p, _ = objs.(id) in
      Printf.printf "  #%d  %s  dist=%g\n" id (Point.to_string p) dist)
    results

let nn_cmd =
  let metric =
    Arg.(
      value
      & opt (enum [ ("linf", `Linf); ("l2", `L2) ]) `Linf
      & info [ "metric" ] ~docv:"METRIC" ~doc:"linf (Corollary 4) or l2 (Corollary 7, integer coordinates).")
  in
  let point = floats_arg [ "point" ] "X1,X2,..." "Query point." in
  let t' = Arg.(value & opt int 1 & info [ "t" ] ~docv:"T" ~doc:"Number of neighbors.") in
  Cmd.v
    (Cmd.info "nn" ~doc:"Nearest neighbors + keywords (Corollaries 4 and 7)" ~man:man_footer)
    Term.(
      const nn $ input_arg $ k_arg $ metric $ point $ t' $ kw_arg $ planner_arg $ feedback_arg)

(* ---- info ----------------------------------------------------------- *)

module Pager = Kwsc_snapshot.Pager

(* kwsc info <snapshot>: the pager's framing view — header fields plus
   the per-section directory (offset, length, stored CRC). Framing only:
   no payload is read, so this works instantly on any size of file and
   never fails on payload corruption (the CRCs are what the loaders
   verify, eagerly or on first touch). *)
let snapshot_info snap =
  match Pager.open_file snap with
  | Error e ->
      Printf.eprintf "kwsc info: %s\n" (Kwsc_snapshot.Codec.error_to_string e);
      exit 1
  | Ok pgr ->
      Printf.printf "snapshot: %s\nkind: %s\nformat version: %d\nfile size: %d bytes\n" snap
        (Pager.kind pgr) (Pager.version pgr) (Pager.file_size pgr);
      let sections = Pager.sections pgr in
      Printf.printf "sections: %d\n" (Array.length sections);
      Printf.printf "  %-16s %12s %12s  %s\n" "name" "offset" "length" "crc32";
      Array.iter
        (fun s ->
          Printf.printf "  %-16s %12d %12d  %08x\n" s.Pager.name s.Pager.off s.Pager.len
            s.Pager.crc)
        sections

let info_cmd_impl snap input k =
  match (snap, input) with
  | Some snap, _ -> snapshot_info snap
  | None, Some input ->
      let objs = load_objects input in
      let t = Kwsc.Orp_kw.build ~k objs in
      let s = Kwsc.Orp_kw.space_stats t in
      Printf.printf "objects: %d\ninput size N: %d\nindex (kd transform, k=%d):\n  %s\n"
        (Array.length objs) (Kwsc.Orp_kw.input_size t) k
        (Format.asprintf "%a" Kwsc.Stats.pp_space s);
      Printf.printf "  words per input word: %.2f\n"
        (float_of_int s.Kwsc.Stats.total_words /. float_of_int (Kwsc.Orp_kw.input_size t))
  | None, None ->
      Printf.eprintf "kwsc info: pass a snapshot file, or --input to build and account an index\n";
      exit 2

let info_cmd =
  let snap_pos =
    Arg.(
      value
      & pos 0 (some non_dir_file) None
      & info [] ~docv:"SNAP"
          ~doc:"Snapshot file: print its header, kind, format version and section table.")
  in
  let input_opt =
    Arg.(
      value
      & opt (some non_dir_file) None
      & info [ "i"; "input" ] ~docv:"FILE" ~doc:"Dataset file: build ORP-KW and print space accounting.")
  in
  Cmd.v
    (Cmd.info "info" ~doc:"Inspect a snapshot's section table, or build ORP-KW and print space accounting"
       ~man:man_footer)
    Term.(const info_cmd_impl $ snap_pos $ input_opt $ k_arg)

(* ---- save / load ---------------------------------------------------- *)

module Codec = Kwsc_snapshot.Codec

let save input k kindsel out shards =
  let objs = load_objects input in
  let kshards = resolve_shards shards in
  let plan = (SPlan.default_policy (), kshards) in
  let kind =
    match (kindsel, kshards > 1) with
    | `Orp, false ->
        Kwsc.Orp_kw.save out (Kwsc.Orp_kw.build ~k objs);
        Kwsc.Orp_kw.kind
    | `Orp, true ->
        Sh.Orp.save out (Sh.Orp.build ~plan k objs);
        Sh.Orp.kind
    | `Lc, false ->
        Kwsc.Lc_kw.save out (Kwsc.Lc_kw.build ~k objs);
        Kwsc.Lc_kw.kind
    | `Srp, false ->
        Kwsc.Srp_kw.save out (Kwsc.Srp_kw.build ~k objs);
        Kwsc.Srp_kw.kind
    | (`Lc | `Srp), true ->
        Printf.eprintf "kwsc save: --shards supports only the orp and inverted kinds\n";
        exit 2
    | `Inverted, false ->
        Kwsc_invindex.Inverted.save out (Kwsc_invindex.Inverted.build (Array.map snd objs));
        Kwsc_invindex.Inverted.kind
    | `Inverted, true ->
        Sh.Inverted.save out
          (Sh.Inverted.build ~plan Kwsc_util.Container.Hybrid (Array.map snd objs));
        Sh.Inverted.kind
  in
  let size =
    let ic = open_in_bin out in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> in_channel_length ic)
  in
  Printf.printf "wrote %s snapshot (%d bytes) to %s\n" kind size out

let save_cmd =
  let kindsel =
    Arg.(
      value
      & opt (enum [ ("orp", `Orp); ("lc", `Lc); ("srp", `Srp); ("inverted", `Inverted) ]) `Orp
      & info [ "kind" ] ~docv:"KIND" ~doc:"Index to build and snapshot: orp, lc, srp or inverted.")
  in
  let out =
    Arg.(required & opt (some string) None & info [ "o"; "output" ] ~docv:"SNAP" ~doc:"Snapshot file.")
  in
  Cmd.v
    (Cmd.info "save" ~doc:"Build an index and write a durable snapshot" ~man:man_footer)
    Term.(const save $ input_arg $ k_arg $ kindsel $ out $ shards_arg)

let corrupt_exit (e : Codec.error) : 'a =
  Printf.eprintf "kwsc load: %s\n" (Codec.error_to_string e);
  exit 1

let ok_or_die = function Ok t -> t | Error e -> corrupt_exit e

let require flag = function
  | Some v -> v
  | None ->
      Printf.eprintf "kwsc load: --%s is required for this snapshot kind\n" flag;
      exit 2

let load_impl snap input lo hi kws stats planner feedback shards ooc =
  apply_planner planner;
  apply_feedback feedback;
  let kind = ok_or_die (Codec.peek_kind ~path:snap) in
  let kshards = resolve_shards shards in
  (* Only repartition when sharding was explicitly requested; a sharded
     snapshot always loads under its stored plan. *)
  let plan_opt = if kshards > 1 then Some (SPlan.default_policy (), kshards) else None in
  if kind = Sh.Orp.kind || (kind = Kwsc.Orp_kw.kind && kshards > 1) then begin
    (* sharded snapshot, or an unsharded one resharded on load *)
    let objs = load_objects (require "input" input) in
    let t = ok_or_die (Sh.Orp.load ?plan:plan_opt snap) in
    let q = Rect.make (Array.of_list (require "lo" lo)) (Array.of_list (require "hi" hi)) in
    let ids, st = Sh.Orp.query_stats t (q, Array.of_list (require "kw" kws)) in
    print_results objs ids;
    if stats then print_query_stats st
  end
  else if kind = Kwsc.Orp_kw.kind then begin
    (* same output as [kwsc rect] on the same dataset — the CI round-trip
       gate diffs the two byte for byte *)
    let objs = load_objects (require "input" input) in
    let t = ok_or_die (Kwsc.Orp_kw.load snap) in
    let q = Rect.make (Array.of_list (require "lo" lo)) (Array.of_list (require "hi" hi)) in
    let ids, st = Kwsc.Orp_kw.query_stats t q (Array.of_list (require "kw" kws)) in
    print_results objs ids;
    if stats then print_query_stats st
  end
  else if kind = Sh.Inverted.kind || (kind = Kwsc_invindex.Inverted.kind && kshards > 1)
  then begin
    let objs = load_objects (require "input" input) in
    let t = ok_or_die (Sh.Inverted.load ?plan:plan_opt snap) in
    let ids = Sh.Inverted.query t (Array.of_list (require "kw" kws)) in
    print_results objs ids
  end
  else if kind = Kwsc_invindex.Inverted.kind then begin
    let objs = load_objects (require "input" input) in
    let loader =
      if resolve_ooc ooc then Kwsc_invindex.Inverted.load_paged else Kwsc_invindex.Inverted.load
    in
    let t = ok_or_die (loader snap) in
    let ids = Kwsc_invindex.Inverted.query t (Array.of_list (require "kw" kws)) in
    print_results objs ids
  end
  else begin
    let summary name k d n = Printf.printf "loaded %s snapshot: k=%d d=%d N=%d\n" name k d n in
    if kind = Kwsc.Lc_kw.kind then
      let t = ok_or_die (Kwsc.Lc_kw.load snap) in
      summary kind (Kwsc.Lc_kw.k t) (Kwsc.Lc_kw.dim t) (Kwsc.Lc_kw.input_size t)
    else if kind = Kwsc.Srp_kw.kind then
      let t = ok_or_die (Kwsc.Srp_kw.load snap) in
      summary kind (Kwsc.Srp_kw.k t) (Kwsc.Srp_kw.dim t) (Kwsc.Srp_kw.input_size t)
    else if kind = Kwsc.Sp_kw.kind then
      let t = ok_or_die (Kwsc.Sp_kw.load snap) in
      summary kind (Kwsc.Sp_kw.k t) (Kwsc.Sp_kw.dim t) (Kwsc.Sp_kw.input_size t)
    else if kind = Kwsc.Rr_kw.kind then
      let t = ok_or_die (Kwsc.Rr_kw.load snap) in
      summary kind (Kwsc.Rr_kw.k t) (Kwsc.Rr_kw.dim t) (Kwsc.Rr_kw.input_size t)
    else if kind = Kwsc.L2_nn_kw.kind then
      let t = ok_or_die (Kwsc.L2_nn_kw.load snap) in
      summary kind (Kwsc.L2_nn_kw.k t) (Kwsc.L2_nn_kw.dim t) (Kwsc.L2_nn_kw.input_size t)
    else if kind = Kwsc.Linf_nn_kw.kind then
      let t = ok_or_die (Kwsc.Linf_nn_kw.load snap) in
      summary kind (Kwsc.Linf_nn_kw.k t) (Kwsc.Linf_nn_kw.dim t) (Kwsc.Linf_nn_kw.input_size t)
    else begin
      Printf.eprintf "kwsc load: unknown snapshot kind %S\n" kind;
      exit 1
    end
  end

let load_cmd =
  let snap =
    Arg.(
      required
      & opt (some non_dir_file) None
      & info [ "index" ] ~docv:"SNAP" ~doc:"Snapshot file written by kwsc save.")
  in
  let input_opt =
    Arg.(
      value
      & opt (some non_dir_file) None
      & info [ "i"; "input" ] ~docv:"FILE" ~doc:"Dataset file (needed to print matched objects).")
  in
  let opt_floats names docv doc =
    Arg.(value & opt (some (list float)) None & info names ~docv ~doc)
  in
  let lo = opt_floats [ "lo" ] "X1,X2,..." "Lower corner of the query rectangle (orp snapshots)." in
  let hi = opt_floats [ "hi" ] "Y1,Y2,..." "Upper corner of the query rectangle (orp snapshots)." in
  let kws =
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "kw"; "keywords" ] ~docv:"W1,W2,..." ~doc:"Query keywords (orp and inverted snapshots).")
  in
  Cmd.v
    (Cmd.info "load" ~doc:"Load a snapshot and query it (no rebuild)" ~man:man_footer)
    Term.(
      const load_impl $ snap $ input_opt $ lo $ hi $ kws $ stats_flag $ planner_arg $ feedback_arg
      $ shards_arg $ ooc_arg)

(* ---- serve ---------------------------------------------------------- *)

module Serve = Kwsc_serve.Serve
module Epoch = Kwsc_serve.Epoch

(* A line-oriented request loop over the serve core (DESIGN.md section 14):
   the process's stdin is the single writer, queries run against the
   current epoch through the domain pool (KWSC_DOMAINS readers). Output is
   deterministic — the CI smoke gate diffs answers across
   checkpoint → kill → restore. *)

let serve_impl k d input restore checkpoint_default ooc =
  let startup_or_die f =
    try f ()
    with Invalid_argument msg | Failure msg ->
      Printf.eprintf "kwsc serve: %s\n" msg;
      exit 1
  in
  let server =
    match restore with
    | Some snap -> ok_or_die (Serve.restore ~ooc:(resolve_ooc ooc) snap)
    | None -> startup_or_die (fun () -> Serve.create ~k ~d ())
  in
  (match input with
  | Some file ->
      startup_or_die (fun () ->
          Array.iter (fun o -> ignore (Serve.insert server o)) (load_objects file))
  | None -> ());
  let e0 = Serve.current server in
  Printf.printf "serving k=%d d=%d n=%d v=%d domains=%d\n%!" (Epoch.arity e0) (Epoch.dim e0)
    (Epoch.live_count e0) (Epoch.version e0)
    (Kwsc_util.Pool.size (Kwsc_util.Pool.default ()));
  let floats s = Array.of_list (List.map float_of_string (String.split_on_char ',' s)) in
  let ints s = Array.of_list (List.map int_of_string (String.split_on_char ',' s)) in
  let do_checkpoint path =
    Serve.checkpoint server path;
    Printf.printf "checkpoint %s v=%d\n" path (Serve.version server)
  in
  let checkpoint_on_exit () =
    match checkpoint_default with Some path -> do_checkpoint path | None -> ()
  in
  let run_command line =
    match String.split_on_char ' ' (String.trim line) |> List.filter (fun s -> s <> "") with
    | [] -> true
    | [ "quit" ] -> false
    | "insert" :: rest ->
        let obj = Kwsc_workload.Csv_io.parse_line 0 (String.concat " " rest) in
        let id = Serve.insert server obj in
        Printf.printf "inserted id=%d v=%d\n" id (Serve.version server);
        true
    | [ "delete"; id ] ->
        Serve.delete server (int_of_string id);
        Printf.printf "deleted id=%s v=%d\n" id (Serve.version server);
        true
    | [ "query"; lo; hi; kws ] ->
        (* one-element batch: the read runs on the domain pool against the
           epoch pinned for the whole call *)
        let e = Serve.current server in
        let q = Rect.make (floats lo) (floats hi) in
        let answers, st = Epoch.query_batch e [| (q, ints kws) |] in
        Printf.printf "ids=%s (n=%d v=%d work=%d)\n"
          (String.concat "," (List.map string_of_int (Array.to_list answers.(0))))
          (Array.length answers.(0)) (Epoch.version e) (Kwsc.Stats.work st);
        true
    | [ "maintain" ] ->
        let changed = Serve.maintain server in
        Printf.printf "maintain changed=%b levels=%d\n" changed
          (List.length (Serve.bucket_sizes server));
        true
    | [ "stats" ] ->
        Printf.printf "v=%d n=%d levels=[%s]\n" (Serve.version server) (Serve.size server)
          (String.concat ";" (List.map string_of_int (Serve.bucket_sizes server)));
        true
    | [ "checkpoint" ] ->
        (match checkpoint_default with
        | Some path -> do_checkpoint path
        | None -> Printf.printf "error: no --checkpoint path configured\n");
        true
    | [ "checkpoint"; path ] ->
        do_checkpoint path;
        true
    | cmd :: _ ->
        Printf.printf "error: unknown command %s\n" cmd;
        true
  in
  let rec loop () =
    match In_channel.input_line stdin with
    | None -> checkpoint_on_exit ()
    | Some line ->
        let continue_ =
          try run_command line
          with
          | Invalid_argument msg | Failure msg ->
            Printf.printf "error: %s\n" msg;
            true
        in
        flush stdout;
        if continue_ then loop () else checkpoint_on_exit ()
  in
  loop ();
  flush stdout

let serve_cmd =
  let d_arg =
    Arg.(value & opt int 2 & info [ "d" ] ~docv:"D" ~doc:"Dimensionality for a fresh server.")
  in
  let input_opt =
    Arg.(
      value
      & opt (some non_dir_file) None
      & info [ "i"; "input" ] ~docv:"FILE" ~doc:"Bulk-load this dataset before serving.")
  in
  let restore =
    Arg.(
      value
      & opt (some non_dir_file) None
      & info [ "restore" ] ~docv:"SNAP"
          ~doc:"Start from a checkpoint written by the checkpoint command (no rebuild).")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"SNAP"
          ~doc:
            "Default checkpoint path: written by the bare checkpoint command and on clean \
             exit — the durable restart point for --restore.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve a dynamic index: stdin request loop with epoch reads and durable checkpoints"
       ~man:man_footer)
    Term.(const serve_impl $ k_arg $ d_arg $ input_opt $ restore $ checkpoint $ ooc_arg)

(* ---- main ----------------------------------------------------------- *)

let () =
  let doc = "Indexes for keyword search with structured constraints (PODS 2023 reproduction)" in
  let info = Cmd.info "kwsc" ~version:"1.0.0" ~doc ~man:man_footer in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            generate_cmd;
            rect_cmd;
            halfspace_cmd;
            sphere_cmd;
            nn_cmd;
            info_cmd;
            save_cmd;
            load_cmd;
            serve_cmd;
          ]))
